// Package service is the concurrent query-serving layer over built or
// opened spatiotemporal indexes: a refcounted snapshot registry with
// atomic hot-swap, a pool of per-worker query sessions (private buffer
// pools and decode caches over shared frozen page stores), and a bounded
// admission queue with deadlines, optional same-snapshot batching and
// built-in metrics. cmd/stserve exposes it over HTTP/JSON; embedders use
// New / Registry / Session directly.
//
// The design leans on two guarantees from the layers below: a frozen
// pagefile.Store is safe for any number of concurrent readers each
// owning a private Buffer (the PR 2 QueryView machinery), and CloseIndex
// is idempotent — so the registry can retire a snapshot while queries
// drain and close it exactly when the last lease releases.
package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	stx "stindex"
)

// Exported admission errors.
var (
	// ErrQueueFull is returned in reject mode when the admission queue
	// has no room (HTTP maps it to 503).
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrClosed is returned once Close has begun; queued requests still
	// drain.
	ErrClosed = errors.New("service: closed")
)

// Config sizes the service. The zero value serves with GOMAXPROCS
// workers, a 64-slot queue, no batching, no default deadline, blocking
// admission.
type Config struct {
	// Workers is the session-pool size: that many queries execute truly
	// concurrently, each on its own view. 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue (requests accepted but not
	// yet executing). 0 = 64.
	QueueDepth int
	// BatchSize > 1 lets a worker opportunistically drain up to this
	// many queued requests at once and serve same-snapshot runs under a
	// single lease. 0 or 1 disables batching.
	BatchSize int
	// DefaultTimeout bounds every request that arrives without its own
	// deadline. 0 = no default deadline.
	DefaultTimeout time.Duration
	// RejectWhenFull makes admission non-blocking: a full queue fails
	// fast with ErrQueueFull instead of waiting for room until the
	// context expires. This is the load-shedding policy a front end
	// usually wants; the default (blocking) gives natural backpressure
	// to in-process callers.
	RejectWhenFull bool
	// CacheMB sizes the registry's shared striped page cache in
	// mebibytes (see RegistryConfig.CacheBytes). 0 disables it.
	CacheMB int
	// OpenBackend is the container read flavour for snapshots loaded
	// through the registry (lazy window, mmap, eager memory). Empty
	// defers to STINDEX_BACKEND.
	OpenBackend stx.Backend
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	return c
}

// Service is the concurrent query engine: requests enter a bounded
// queue, workers (each owning a Session) execute them against registry
// snapshots, metrics account every outcome. Create with New, serve with
// Query, shut down with Close (graceful: queued requests drain).
type Service struct {
	cfg     Config
	reg     *Registry
	reqCh   chan *request
	metrics serviceMetrics

	mu     sync.RWMutex // guards closed and the send into reqCh
	closed bool
	wg     sync.WaitGroup

	// ingestStats, when set, contributes the live-ingestion pipeline's
	// counters to Metrics (holds a func() *IngestStats).
	ingestStats atomic.Value
}

type request struct {
	ctx      context.Context
	snapshot string
	q        stx.Query
	enqueued time.Time
	done     chan response // buffered(1): workers never block on it
}

type response struct {
	res Result
	err error
}

// New creates a service with its own empty registry and starts the
// worker pool.
func New(cfg Config) *Service {
	s := &Service{
		cfg:     cfg.withDefaults(),
		metrics: serviceMetrics{start: time.Now()},
	}
	s.reg = NewRegistryConfig(RegistryConfig{
		CacheBytes:  int64(s.cfg.CacheMB) << 20,
		OpenBackend: s.cfg.OpenBackend,
	})
	s.reqCh = make(chan *request, s.cfg.QueueDepth)
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the service's snapshot registry; load, hot-swap and
// drop snapshots through it at any time, including while serving.
func (s *Service) Registry() *Registry { return s.reg }

// Query submits one query against the named snapshot and waits for its
// answer. Admission: if the queue is full, Query blocks for room (or
// fails fast with ErrQueueFull when Config.RejectWhenFull is set).
// Config.DefaultTimeout applies when ctx carries no deadline; a context
// that expires while the request is queued or executing makes Query
// return the context's error (the execution result, if any, is
// discarded).
func (s *Service) Query(ctx context.Context, snapshot string, q stx.Query) (Result, error) {
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	r := &request{
		ctx:      ctx,
		snapshot: snapshot,
		q:        q,
		enqueued: time.Now(),
		done:     make(chan response, 1),
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	if s.cfg.RejectWhenFull {
		select {
		case s.reqCh <- r:
			s.mu.RUnlock()
		default:
			s.mu.RUnlock()
			s.metrics.rejected.Add(1)
			return Result{}, ErrQueueFull
		}
	} else {
		select {
		case s.reqCh <- r:
			s.mu.RUnlock()
		case <-ctx.Done():
			s.mu.RUnlock()
			s.metrics.timedOut.Add(1)
			return Result{}, ctx.Err()
		}
	}

	select {
	case resp := <-r.done:
		if resp.err != nil && (errors.Is(resp.err, context.Canceled) || errors.Is(resp.err, context.DeadlineExceeded)) {
			s.metrics.timedOut.Add(1)
		}
		return resp.res, resp.err
	case <-ctx.Done():
		// The request is still queued or executing; the worker's answer
		// (sent into the buffered channel) is discarded.
		s.metrics.timedOut.Add(1)
		return Result{}, ctx.Err()
	}
}

// QueueDepth returns the number of requests currently queued (admitted,
// not yet picked up by a worker).
func (s *Service) QueueDepth() int { return len(s.reqCh) }

// Metrics returns a point-in-time snapshot of the serving counters,
// including per-snapshot registry statistics.
func (s *Service) Metrics() Metrics {
	m := s.metrics.snapshot()
	m.Workers = s.cfg.Workers
	m.QueueDepth = len(s.reqCh)
	m.QueueCapacity = s.cfg.QueueDepth
	m.BatchSize = s.cfg.BatchSize
	m.Cache = s.reg.Cache().Stats()
	m.Snapshots = s.reg.List()
	if fn, ok := s.ingestStats.Load().(func() *IngestStats); ok && fn != nil {
		m.Ingest = fn()
	}
	return m
}

// SetIngestStats registers the live-ingestion pipeline's stats source;
// Metrics calls it on every snapshot. Pass the Ingester's Stats adapter
// once at startup.
func (s *Service) SetIngestStats(fn func() *IngestStats) {
	s.ingestStats.Store(fn)
}

// Close drains the service gracefully: new queries fail with ErrClosed
// immediately, already-queued requests are still executed, and the
// registry's snapshots are dropped (closing their containers once every
// lease releases). Safe to call more than once.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.reqCh)
	s.mu.Unlock()
	s.wg.Wait()
	return s.reg.Close()
}

// worker is one session-pool goroutine: it owns a Session (private
// views), pulls requests, opportunistically batches, and answers.
func (s *Service) worker() {
	defer s.wg.Done()
	sess := NewSession(s.reg)
	batch := make([]*request, 0, s.cfg.BatchSize)
	for r := range s.reqCh {
		batch = append(batch[:0], r)
		// Opportunistic drain: whatever is already queued, up to the
		// batch cap, without waiting for more to arrive.
	drain:
		for len(batch) < s.cfg.BatchSize {
			select {
			case more, ok := <-s.reqCh:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		s.serveBatch(sess, batch)
	}
}

// serveBatch answers a run of requests, acquiring each distinct snapshot
// once and serving its requests under that single lease — the batching
// optimisation for same-snapshot traffic. Request order is preserved
// within each snapshot group.
func (s *Service) serveBatch(sess *Session, batch []*request) {
	// Group by snapshot name, preserving arrival order within groups.
	// Batches are small (<= BatchSize), so a linear scan beats a map.
	for i, r := range batch {
		if r == nil {
			continue
		}
		lease, err := s.reg.Acquire(r.snapshot)
		if err != nil {
			s.answer(r, Result{}, err)
			batch[i] = nil
			continue
		}
		for j := i; j < len(batch); j++ {
			rj := batch[j]
			if rj == nil || rj.snapshot != r.snapshot {
				continue
			}
			res, err := sess.QueryLeased(rj.ctx, lease, rj.q)
			s.answer(rj, res, err)
			batch[j] = nil
		}
		lease.Release()
	}
}

// answer completes one request: sends the response (never blocking — the
// done channel is buffered and the client may be gone) and accounts it.
func (s *Service) answer(r *request, res Result, err error) {
	switch {
	case err == nil:
		s.metrics.completed.Add(1)
		s.metrics.latency.record(time.Since(r.enqueued))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Counted as timed-out by the waiting client side.
	default:
		s.metrics.failed.Add(1)
	}
	r.done <- response{res: res, err: err}
}
