package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	stx "stindex"
)

// buildIndexSeed builds a PPR index over a seed-controlled dataset, so
// two seeds give two snapshots with genuinely different answers.
func buildIndexSeed(t *testing.T, seed int64) stx.Index {
	t.Helper()
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: 400, Horizon: 500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 600})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := stx.BuildPPR(records, stx.PPROptions{Backend: stx.BackendMemory})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// expectedAnswers runs the workload against a private eager copy of the
// container — the reference answers for that container.
func expectedAnswers(t *testing.T, path string, queries []stx.Query) [][]int64 {
	t.Helper()
	ix, err := stx.OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer stx.CloseIndex(ix)
	out := make([][]int64, len(queries))
	for i, q := range queries {
		ids, err := stx.RunQuery(ix, q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ids
	}
	return out
}

// TestSharedCacheAbsorbsRepeatTraffic pins the tentpole's point: across
// sessions, page requests that miss the private pools are served by the
// registry-wide shared cache instead of the store, the split counters
// partition cleanly, and answers stay bit-identical to an uncached
// registry.
func TestSharedCacheAbsorbsRepeatTraffic(t *testing.T) {
	path := saveContainer(t, buildIndexSeed(t, 11))
	queries := testQueries(t, 40)
	want := expectedAnswers(t, path, queries)

	reg := NewRegistryConfig(RegistryConfig{CacheBytes: 32 << 20})
	if reg.Cache() == nil {
		t.Fatal("configured registry has no cache")
	}
	if _, err := reg.Load("data", path); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Several fresh sessions in sequence: the first warms the shared
	// cache, later ones should be absorbed by it.
	for s := 0; s < 4; s++ {
		sess := NewSession(reg)
		for i, q := range queries {
			res, err := sess.Query(context.Background(), "data", q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(res.IDs, want[i]) {
				t.Fatalf("session %d query %d: ids %v, want %v", s, i, res.IDs, want[i])
			}
		}
	}

	infos := reg.List()
	if len(infos) != 1 {
		t.Fatalf("List returned %d entries", len(infos))
	}
	info := infos[0]
	if info.SharedHits == 0 {
		t.Fatalf("no shared-cache hits after repeat sessions: %+v", info)
	}
	if info.SharedHits+info.StoreReads != info.Reads {
		t.Fatalf("counters do not partition: shared %d + store %d != reads %d",
			info.SharedHits, info.StoreReads, info.Reads)
	}
	if info.HitRate <= 0 || info.HitRate > 1 {
		t.Fatalf("hit rate out of range: %v", info.HitRate)
	}
	if info.Decodes == 0 || info.DecodeHits == 0 {
		t.Fatalf("decode sharing inert: %+v", info)
	}
	if st := reg.Cache().Stats(); st.Bytes == 0 || st.Entries == 0 {
		t.Fatalf("cache reports no residency: %+v", st)
	}
}

// TestHotSwapRetiresCacheGeneration is the stale-page regression test:
// queries run concurrently with repeated hot-swaps between two different
// datasets under one name, and every answer must match the dataset of
// the generation that served it — a stale shared-cache page would break
// that. After the registry closes, no retired generation may have
// resident cache entries. Run under -race in CI.
func TestHotSwapRetiresCacheGeneration(t *testing.T) {
	pathA := saveContainer(t, buildIndexSeed(t, 11))
	pathB := saveContainer(t, buildIndexSeed(t, 77))
	queries := testQueries(t, 12)
	wantA := expectedAnswers(t, pathA, queries)
	wantB := expectedAnswers(t, pathB, queries)

	reg := NewRegistryConfig(RegistryConfig{CacheBytes: 16 << 20})
	snap, err := reg.Load("data", pathA)
	if err != nil {
		t.Fatal(err)
	}

	// One goroutine performs every load, so generations are handed out
	// sequentially and the gen → dataset mapping is known before the
	// queries start: base+1+i serves paths[i%2].
	const swaps = 40
	base := snap.Gen()
	paths := []string{pathB, pathA}
	genPath := map[uint64]string{base: pathA}
	allGens := []uint64{base}
	for i := 0; i < swaps; i++ {
		genPath[base+1+uint64(i)] = paths[i%2]
		allGens = append(allGens, base+1+uint64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewSession(reg)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := i % len(queries)
				res, err := sess.Query(context.Background(), "data", queries[qi])
				if err != nil {
					errCh <- err
					return
				}
				path := genPath[res.Gen]
				var want []int64
				switch path {
				case pathA:
					want = wantA[qi]
				case pathB:
					want = wantB[qi]
				default:
					t.Errorf("result from unknown generation %d", res.Gen)
					errCh <- nil
					return
				}
				if !sameIDs(res.IDs, want) {
					t.Errorf("gen %d (%s) query %d: got %v, want %v — stale page served across hot-swap",
						res.Gen, path, qi, res.IDs, want)
					errCh <- nil
					return
				}
			}
		}()
	}

	for i := 0; i < swaps; i++ {
		snap, err := reg.Load("data", paths[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if snap.Gen() != base+1+uint64(i) {
			t.Fatalf("generation %d handed out for swap %d, want %d", snap.Gen(), i, base+1+uint64(i))
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
		return // an Errorf above already failed the test
	default:
	}

	// Every generation but the live one has fully drained; its cache
	// entries must be gone the moment the last lease released.
	live := allGens[len(allGens)-1]
	for _, gen := range allGens {
		if gen == live {
			continue
		}
		if n := reg.Cache().EntriesForGen(gen); n != 0 {
			t.Fatalf("retired generation %d still holds %d cache entries", gen, n)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if n := reg.Cache().EntriesForGen(live); n != 0 {
		t.Fatalf("closed registry's live generation %d still holds %d cache entries", live, n)
	}
}

// TestPublishOpenerParticipatesInCache pins the ingestion pipeline's
// serving contract: a snapshot installed through PublishOpener — the
// callback opening its container through the registry-provided options —
// serves page misses from the shared cache exactly like a Load-ed one,
// and dropping it retires its generation's entries.
func TestPublishOpenerParticipatesInCache(t *testing.T) {
	path := saveContainer(t, buildIndexSeed(t, 11))
	queries := testQueries(t, 20)
	want := expectedAnswers(t, path, queries)

	reg := NewRegistryConfig(RegistryConfig{CacheBytes: 16 << 20})
	defer reg.Close()
	snap, err := reg.PublishOpener("live", func(opts stx.OpenOptions) (stx.Index, error) {
		return stx.OpenIndexOptions(path, opts)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Repeat sessions: the first warms the shared cache, later ones are
	// absorbed by it — same behaviour the Load path proves above.
	for s := 0; s < 3; s++ {
		sess := NewSession(reg)
		for i, q := range queries {
			res, err := sess.Query(context.Background(), "live", q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(res.IDs, want[i]) {
				t.Fatalf("session %d query %d: ids %v, want %v", s, i, res.IDs, want[i])
			}
		}
	}

	info := reg.List()[0]
	if info.SharedHits == 0 {
		t.Fatalf("PublishOpener snapshot never hit the shared cache: %+v", info)
	}
	if info.SharedHits+info.StoreReads != info.Reads {
		t.Fatalf("counters do not partition: shared %d + store %d != reads %d",
			info.SharedHits, info.StoreReads, info.Reads)
	}
	if st := reg.Cache().Stats(); st.Entries == 0 {
		t.Fatalf("cache reports no residency: %+v", st)
	}

	gen := snap.Gen()
	if err := reg.Drop("live"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Cache().EntriesForGen(gen); n != 0 {
		t.Fatalf("dropped PublishOpener generation %d still holds %d cache entries", gen, n)
	}
}

// TestPublishOpenerErrorRetires pins the failure path: when the callback
// errors after partially reading through the provided options, nothing is
// installed and any cache entries published under the aborted generation
// are dropped.
func TestPublishOpenerErrorRetires(t *testing.T) {
	path := saveContainer(t, buildIndexSeed(t, 11))
	queries := testQueries(t, 4)

	reg := NewRegistryConfig(RegistryConfig{CacheBytes: 16 << 20})
	defer reg.Close()
	errBoom := fmt.Errorf("boom")
	_, err := reg.PublishOpener("live", func(opts stx.OpenOptions) (stx.Index, error) {
		ix, err := stx.OpenIndexOptions(path, opts)
		if err != nil {
			return nil, err
		}
		// Read some pages through the wrapped store, then fail the open.
		for _, q := range queries {
			if _, err := stx.RunQuery(ix, q); err != nil {
				stx.CloseIndex(ix)
				return nil, err
			}
		}
		stx.CloseIndex(ix)
		return nil, errBoom
	})
	if err == nil || !errors.Is(err, errBoom) {
		t.Fatalf("PublishOpener error = %v, want %v", err, errBoom)
	}
	if _, err := reg.Acquire("live"); err == nil {
		t.Fatal("failed PublishOpener still installed a snapshot")
	}
	if st := reg.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("aborted publish left cache entries behind: %+v", st)
	}
}

// TestPublishServesUncached pins that Publish-ed (in-memory) snapshots
// bypass the shared cache but still answer correctly with zeroed split
// counters.
func TestPublishServesUncached(t *testing.T) {
	reg := NewRegistryConfig(RegistryConfig{CacheBytes: 8 << 20})
	if _, err := reg.Publish("mem", buildIndexSeed(t, 11)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	sess := NewSession(reg)
	for _, q := range testQueries(t, 10) {
		if _, err := sess.Query(context.Background(), "mem", q); err != nil {
			t.Fatal(err)
		}
	}
	info := reg.List()[0]
	if info.SharedHits != 0 || info.StoreReads != 0 {
		t.Fatalf("published snapshot touched the shared cache: %+v", info)
	}
	if st := reg.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("published snapshot populated the cache: %+v", st)
	}
}
