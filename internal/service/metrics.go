package service

import (
	"math/bits"
	"sync/atomic"
	"time"

	"stindex/internal/pagefile"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts latencies in [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs),
// so 40 buckets cover sub-microsecond to ~6 days.
const histBuckets = 40

// histogram is a lock-free latency histogram. Record and quantile
// estimation are safe for concurrent use; quantiles are bucket upper
// bounds, i.e. exact to within a factor of two — plenty for p50/p95/p99
// monitoring, with client-side timing used where exactness matters.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) // 1µs -> 1, 2-3µs -> 2, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func (h *histogram) record(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// quantile returns an upper bound on the q-quantile latency (q in
// [0,1]); 0 when nothing was recorded.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			// Upper bound of bucket i: 2^i microseconds (bucket 0: 1µs).
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<uint(histBuckets-1)) * time.Microsecond
}

func (h *histogram) mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// serviceMetrics aggregates the serving counters.
type serviceMetrics struct {
	start     time.Time
	completed atomic.Int64 // queries answered (successfully)
	failed    atomic.Int64 // queries whose execution returned an error
	rejected  atomic.Int64 // admissions refused because the queue was full
	timedOut  atomic.Int64 // requests whose context expired before completion
	latency   histogram    // enqueue-to-answer, completed queries only
}

// Metrics is a point-in-time snapshot of the service's counters,
// JSON-ready for the /metrics endpoint.
type Metrics struct {
	Uptime   string `json:"uptime"`
	UptimeNS int64  `json:"uptime_ns"`

	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	TimedOut  int64 `json:"timed_out"`

	// QPS is completed queries per second of uptime (cumulative).
	QPS float64 `json:"qps"`

	// Latency percentiles are upper bounds from a power-of-two-bucket
	// histogram of enqueue-to-answer times.
	AvgLatencyUS int64 `json:"avg_latency_us"`
	P50US        int64 `json:"p50_us"`
	P95US        int64 `json:"p95_us"`
	P99US        int64 `json:"p99_us"`

	Workers       int `json:"workers"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	BatchSize     int `json:"batch_size"`

	// Cache is the registry-wide shared page cache's state; all zeros
	// when the cache is disabled.
	Cache pagefile.SharedCacheStats `json:"cache"`

	Snapshots []SnapshotInfo `json:"snapshots"`

	// Ingest is the live-ingestion pipeline's counters, present only when
	// the server runs with an ingest endpoint.
	Ingest *IngestStats `json:"ingest,omitempty"`
}

// IngestStats is the live-ingestion pipeline's point-in-time counters,
// assembled by internal/ingest and surfaced through /metrics. The
// durability invariant is visible in the numbers: Accepted counts only
// records whose journal frames were fsynced, so accepted ==
// wal_records_written holds at every quiescent point, and after a
// restart replayed records reappear in Seq but not in Accepted (both are
// per-process counters).
type IngestStats struct {
	Name string `json:"name"`
	// Seq is the total durable record count (snapshot-covered + replayed
	// + accepted this process).
	Seq  uint64 `json:"seq"`
	MaxT int64  `json:"max_t"`
	// LiveObjects and Records describe the live index.
	LiveObjects int `json:"live_objects"`
	Records     int `json:"records"`
	// Accepted counts records acknowledged durable by this process;
	// Rejected counts batches refused for backpressure, Invalid batches
	// refused by validation (neither touches the journal).
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Invalid  int64 `json:"invalid"`
	// Replayed counts records reconstructed from the journal at startup.
	Replayed int64 `json:"replayed"`
	// WALRecords counts frames covered by a successful fsync this
	// process (== Accepted at quiescence); WALBytes counts frame bytes
	// appended.
	WALRecords  int64 `json:"wal_records_written"`
	WALBytes    int64 `json:"wal_bytes"`
	WALSegments int   `json:"wal_segments"`
	Fsyncs      int64 `json:"fsyncs"`
	FsyncAvgUS  int64 `json:"fsync_avg_us"`
	FsyncP50US  int64 `json:"fsync_p50_us"`
	FsyncP99US  int64 `json:"fsync_p99_us"`
	// Freezes counts published snapshots; LastFreezeSeq is the record
	// count the newest one covers.
	Freezes           int64  `json:"freezes"`
	FreezeErrors      int64  `json:"freeze_errors"`
	LastFreezeSeq     uint64 `json:"last_freeze_seq"`
	TruncatedSegments int64  `json:"wal_segments_truncated"`
	// TornBytesRecovered counts bytes truncated from a torn journal tail
	// at the last recovery.
	TornBytesRecovered int64 `json:"torn_bytes_recovered"`
	QueueDepth         int   `json:"ingest_queue_depth"`
	// Latched is the fail-stop error when the pipeline has latched one
	// (journal failure or validator/indexer divergence); empty otherwise.
	Latched string `json:"latched,omitempty"`
}

func (m *serviceMetrics) snapshot() Metrics {
	up := time.Since(m.start)
	completed := m.completed.Load()
	qps := 0.0
	if up > 0 {
		qps = float64(completed) / up.Seconds()
	}
	return Metrics{
		Uptime:       up.Round(time.Millisecond).String(),
		UptimeNS:     int64(up),
		Completed:    completed,
		Failed:       m.failed.Load(),
		Rejected:     m.rejected.Load(),
		TimedOut:     m.timedOut.Load(),
		QPS:          qps,
		AvgLatencyUS: m.latency.mean().Microseconds(),
		P50US:        m.latency.quantile(0.50).Microseconds(),
		P95US:        m.latency.quantile(0.95).Microseconds(),
		P99US:        m.latency.quantile(0.99).Microseconds(),
	}
}
