package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	stx "stindex"
)

// docShape converts a Result into the documented queryResponse wire
// struct, so tests can compare the hand-rolled encoder against
// encoding/json's rendering of the same data.
func docShape(res Result, elapsedUS int64) queryResponse {
	qr := queryResponse{Snapshot: res.Snapshot, Gen: res.Gen, Count: len(res.IDs), IDs: res.IDs, IO: res.IO, ElapsedUS: elapsedUS}
	for _, nb := range res.Neighbors {
		qr.Neighbors = append(qr.Neighbors, queryNeighbor{ID: nb.ObjectID, Dist2: nb.Dist2})
	}
	for _, th := range res.Trajectories {
		qr.Trajectories = append(qr.Trajectories, queryTrajectory{ID: th.ObjectID, Pieces: th.Pieces})
	}
	return qr
}

// TestAppendQueryResponseJSONMatchesEncodingJSON pins the hand-rolled
// encoder to the reflective one byte for byte, across the envelope
// shapes the server produces (empty results, negative ids, snapshot
// names needing escapes, kNN and trajectory payloads).
func TestAppendQueryResponseJSONMatchesEncodingJSON(t *testing.T) {
	cases := []Result{
		{Snapshot: "default", Gen: 1, IDs: []int64{}, IO: 0},
		{Snapshot: "data", Gen: 42, IDs: []int64{7, -9, math.MaxInt64}, IO: 12},
		{Snapshot: "", Gen: 0, IDs: []int64{math.MinInt64}, IO: -1},
		{Snapshot: `we"ird\name`, Gen: 3, IDs: []int64{}, IO: 1},
		{Snapshot: "tab\there\nand<html>&stuff", Gen: 8, IDs: []int64{1, 2}, IO: 3},
		{Snapshot: "unicode-\u2028\u2029-héllo", Gen: 9, IDs: []int64{}, IO: 0},
		{Snapshot: "bad-utf8-\xff", Gen: 10, IDs: []int64{}, IO: 0},
		{Snapshot: "knn", Kind: stx.KindKNN, Gen: 4, IDs: []int64{3, 1, 8}, IO: 5,
			Neighbors: []stx.Neighbor{{ObjectID: 3, Dist2: 0}, {ObjectID: 1, Dist2: 0.001953125}, {ObjectID: 8, Dist2: 2.75e-7}}},
		{Snapshot: "knn-extremes", Kind: stx.KindKNN, Gen: 4, IDs: []int64{1, 2, 3}, IO: 5,
			Neighbors: []stx.Neighbor{{ObjectID: 1, Dist2: math.MaxFloat64}, {ObjectID: 2, Dist2: 1.2345678912345e21}, {ObjectID: 3, Dist2: 5e-324}}},
		{Snapshot: "traj", Kind: stx.KindTrajectory, Gen: 6, IDs: []int64{2, 5}, IO: 7,
			Trajectories: []stx.TrajectoryHit{{ObjectID: 2, Pieces: 1}, {ObjectID: 5, Pieces: 12}}},
		{Snapshot: "knn-empty", Kind: stx.KindKNN, Gen: 2, IDs: []int64{}, IO: 0},
	}
	for _, c := range cases {
		want, err := json.Marshal(docShape(c, 77))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n') // json.Encoder.Encode appends a newline
		got := appendQueryResponseJSON(nil, c, 77)
		if string(got) != string(want) {
			t.Errorf("snapshot %q:\n got %s\nwant %s", c.Snapshot, got, want)
		}
	}
}

// TestAppendJSONFloatMatchesEncodingJSON pins the float renderer to
// encoding/json across the format-switch boundaries (1e-6, 1e21), the
// exponent-cleanup path, and denormals.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 0.001953125, 1.5e-5,
		1e-6, 9.999e-7, 2.75e-7, 1e-300, 5e-324,
		1e20, 999999999999999999999.0, 1e21, 1.2345678912345e21, math.MaxFloat64,
		-9.999e-7, -1e21, 3.141592653589793, 1.7976931348623157e+308,
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, v); string(got) != string(want) {
			t.Errorf("%g: got %s, want %s", v, got, want)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	ids := []int64{5, -17, 0, math.MaxInt64, math.MinInt64}
	frame := appendQueryResponseBinary(nil, Result{Snapshot: "snap-1", Gen: 77, IDs: ids, IO: 123}, 456)
	name, gen, gotIDs, io, elapsed, ok := DecodeBinaryResponse(frame)
	if !ok {
		t.Fatal("frame did not decode")
	}
	if name != "snap-1" || gen != 77 || io != 123 || elapsed != 456 {
		t.Fatalf("envelope: name=%q gen=%d io=%d elapsed=%d", name, gen, io, elapsed)
	}
	if !reflect.DeepEqual(gotIDs, ids) {
		t.Fatalf("ids: got %v, want %v", gotIDs, ids)
	}

	// Truncated and corrupted frames are rejected, not misparsed.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, _, _, ok := DecodeBinaryResponse(frame[:cut]); ok {
			t.Fatalf("truncated frame of %d bytes decoded", cut)
		}
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, _, _, _, _, ok := DecodeBinaryResponse(bad); ok {
		t.Fatal("bad magic decoded")
	}
}

// TestBinaryResponseKindsRoundTrip covers the kNN and trajectory frame
// payloads: full decode restores the Result exactly, the window-only
// decoder rejects non-window frames, and truncations fail closed.
func TestBinaryResponseKindsRoundTrip(t *testing.T) {
	cases := []Result{
		{Kind: stx.KindKNN, Snapshot: "k", Gen: 9, IDs: []int64{4, 2, 9}, IO: 3,
			Neighbors: []stx.Neighbor{{ObjectID: 4, Dist2: 0}, {ObjectID: 2, Dist2: 1.5}, {ObjectID: 9, Dist2: math.MaxFloat64}}},
		{Kind: stx.KindKNN, Snapshot: "k0", Gen: 1, IDs: []int64{}, IO: 0},
		{Kind: stx.KindTrajectory, Snapshot: "t", Gen: 5, IDs: []int64{1, 7}, IO: 2,
			Trajectories: []stx.TrajectoryHit{{ObjectID: 1, Pieces: 3}, {ObjectID: 7, Pieces: 1}}},
		{Kind: stx.KindTrajectory, Snapshot: "t0", Gen: 2, IDs: []int64{}, IO: 0},
	}
	for _, c := range cases {
		frame := appendQueryResponseBinary(nil, c, 42)
		res, elapsed, ok := DecodeBinaryResponseFull(frame)
		if !ok {
			t.Fatalf("kind %v frame did not decode", c.Kind)
		}
		if elapsed != 42 {
			t.Fatalf("elapsed %d", elapsed)
		}
		if res.Kind != c.Kind || res.Snapshot != c.Snapshot || res.Gen != c.Gen || res.IO != c.IO {
			t.Fatalf("envelope: got %+v, want %+v", res, c)
		}
		if !reflect.DeepEqual(res.IDs, c.IDs) {
			t.Fatalf("ids: got %v, want %v", res.IDs, c.IDs)
		}
		if len(c.Neighbors) > 0 && !reflect.DeepEqual(res.Neighbors, c.Neighbors) {
			t.Fatalf("neighbors: got %v, want %v", res.Neighbors, c.Neighbors)
		}
		if len(c.Trajectories) > 0 && !reflect.DeepEqual(res.Trajectories, c.Trajectories) {
			t.Fatalf("trajectories: got %v, want %v", res.Trajectories, c.Trajectories)
		}
		if _, _, _, _, _, ok := DecodeBinaryResponse(frame); ok {
			t.Fatalf("window-only decoder accepted a kind-%v frame", c.Kind)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, _, ok := DecodeBinaryResponseFull(frame[:cut]); ok {
				t.Fatalf("kind %v: truncated frame of %d bytes decoded", c.Kind, cut)
			}
		}
	}

	// An unknown kind word is rejected outright.
	frame := appendQueryResponseBinary(nil, Result{Snapshot: "w", IDs: []int64{1}}, 1)
	frame[4] = 3
	if _, _, ok := DecodeBinaryResponseFull(frame); ok {
		t.Fatal("unknown kind decoded")
	}
}

// TestQueryEncodePathZeroAllocs is the acceptance gate: at steady state
// (pool warmed), rendering a /query response — JSON or binary — performs
// zero heap allocations per operation.
func TestQueryEncodePathZeroAllocs(t *testing.T) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	window := Result{Snapshot: "default", Gen: 3, IDs: ids, IO: 64}
	neighbors := make([]stx.Neighbor, 16)
	for i := range neighbors {
		neighbors[i] = stx.Neighbor{ObjectID: int64(i), Dist2: float64(i) * 0.3330078125}
	}
	knn := Result{Kind: stx.KindKNN, Snapshot: "default", Gen: 3, IDs: ids[:16], Neighbors: neighbors, IO: 64}
	trajectories := make([]stx.TrajectoryHit, 16)
	for i := range trajectories {
		trajectories[i] = stx.TrajectoryHit{ObjectID: int64(i), Pieces: i + 1}
	}
	traj := Result{Kind: stx.KindTrajectory, Snapshot: "default", Gen: 3, IDs: ids[:16], Trajectories: trajectories, IO: 64}

	run := func(name string, f func()) {
		f() // warm the pool outside the measurement
		if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	for _, c := range []struct {
		name string
		res  Result
	}{{"window", window}, {"knn", knn}, {"trajectory", traj}} {
		res := c.res
		run("json/"+c.name, func() {
			bp := getRespBuf()
			*bp = appendQueryResponseJSON(*bp, res, 120)
			putRespBuf(bp)
		})
		run("binary/"+c.name, func() {
			bp := getRespBuf()
			*bp = appendQueryResponseBinary(*bp, res, 120)
			putRespBuf(bp)
		})
	}
}

// TestParseQueryGETZeroAllocs pins the request-parsing half of the hot
// path: a plain GET /query parameter set parses without heap
// allocations.
func TestParseQueryGETZeroAllocs(t *testing.T) {
	u, err := url.Parse("http://host/query?snapshot=default&rect=0.5,1.5,10.25,20.75&from=10&to=90")
	if err != nil {
		t.Fatal(err)
	}
	r := &http.Request{Method: http.MethodGet, URL: u}
	qr, err := parseQueryGET(r)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Snapshot != "default" || !qr.HasFrom || !qr.HasTo || qr.From != 10 || qr.To != 90 {
		t.Fatalf("parsed %+v", qr)
	}
	if qr.Rect != [4]float64{0.5, 1.5, 10.25, 20.75} {
		t.Fatalf("rect %v", qr.Rect)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := parseQueryGET(r); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Errorf("parseQueryGET: %v allocs/op, want 0", allocs)
	}
}

func TestQueryParamUnescapes(t *testing.T) {
	raw := "snapshot=my%20snap&rect=0,0,1,1&t=5&plus=a+b"
	if v, ok := queryParam(raw, "snapshot"); !ok || v != "my snap" {
		t.Fatalf("snapshot = %q, %v", v, ok)
	}
	if v, ok := queryParam(raw, "plus"); !ok || v != "a b" {
		t.Fatalf("plus = %q, %v", v, ok)
	}
	if _, ok := queryParam(raw, "absent"); ok {
		t.Fatal("absent key reported present")
	}
	if v, ok := queryParam(raw, "t"); !ok || v != "5" {
		t.Fatalf("t = %q, %v", v, ok)
	}
}

func BenchmarkQueryResponseJSON(b *testing.B) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	res := Result{Snapshot: "default", Gen: 3, IDs: ids, IO: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := getRespBuf()
		*bp = appendQueryResponseJSON(*bp, res, 120)
		putRespBuf(bp)
	}
}

func BenchmarkQueryResponseBinary(b *testing.B) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	res := Result{Snapshot: "default", Gen: 3, IDs: ids, IO: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := getRespBuf()
		*bp = appendQueryResponseBinary(*bp, res, 120)
		putRespBuf(bp)
	}
}

func BenchmarkQueryResponseJSONReflect(b *testing.B) {
	// The encoding/json baseline the hand-rolled encoder replaced.
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	resp := queryResponse{Snapshot: "default", Gen: 3, Count: len(ids), IDs: ids, IO: 64, ElapsedUS: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQueryGET(b *testing.B) {
	u, err := url.Parse("http://host/query?snapshot=default&rect=0.5,1.5,10.25,20.75&from=10&to=90")
	if err != nil {
		b.Fatal(err)
	}
	r := &http.Request{Method: http.MethodGet, URL: u}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseQueryGET(r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHTTPBinaryProtocol drives the binary /query path end to end: both
// selectors (Accept header and ?format=binary) return a parseable frame
// whose ids match the JSON answer.
func TestHTTPBinaryProtocol(t *testing.T) {
	idx := buildIndex(t, "mem")
	path := saveContainer(t, idx)
	q := testQueries(t, 1)[0]
	want, err := stx.RunQuery(idx, q)
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{Workers: 2, CacheMB: 8})
	defer svc.Close()
	if _, err := svc.Registry().Load("default", path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	urlStr := fmt.Sprintf("%s/query?rect=%g,%g,%g,%g&t=%d",
		srv.URL, q.Rect.MinX, q.Rect.MinY, q.Rect.MaxX, q.Rect.MaxY, q.Interval.Start)

	fetch := func(accept, extra string) []byte {
		req, err := http.NewRequest(http.MethodGet, urlStr+extra, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
			t.Fatalf("Content-Type %q, want %q", ct, BinaryContentType)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	for _, frame := range [][]byte{fetch(BinaryContentType, ""), fetch("", "&format=binary")} {
		name, _, ids, _, _, ok := DecodeBinaryResponse(frame)
		if !ok {
			t.Fatal("binary frame did not decode")
		}
		if name != "default" {
			t.Fatalf("snapshot %q", name)
		}
		if !sameIDs(ids, want) {
			t.Fatalf("binary ids %v, want %v", ids, want)
		}
	}
}
