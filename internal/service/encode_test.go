package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	stx "stindex"
)

// TestAppendQueryResponseJSONMatchesEncodingJSON pins the hand-rolled
// encoder to the reflective one byte for byte, across the envelope
// shapes the server produces (empty results, negative ids, snapshot
// names needing escapes).
func TestAppendQueryResponseJSONMatchesEncodingJSON(t *testing.T) {
	cases := []queryResponse{
		{Snapshot: "default", Gen: 1, Count: 0, IDs: []int64{}, IO: 0, ElapsedUS: 0},
		{Snapshot: "data", Gen: 42, Count: 3, IDs: []int64{7, -9, math.MaxInt64}, IO: 12, ElapsedUS: 345},
		{Snapshot: "", Gen: 0, Count: 1, IDs: []int64{math.MinInt64}, IO: -1, ElapsedUS: 9999999},
		{Snapshot: `we"ird\name`, Gen: 3, Count: 0, IDs: []int64{}, IO: 1, ElapsedUS: 2},
		{Snapshot: "tab\there\nand<html>&stuff", Gen: 8, Count: 2, IDs: []int64{1, 2}, IO: 3, ElapsedUS: 4},
		{Snapshot: "unicode-\u2028\u2029-héllo", Gen: 9, Count: 0, IDs: []int64{}, IO: 0, ElapsedUS: 1},
		{Snapshot: "bad-utf8-\xff", Gen: 10, Count: 0, IDs: []int64{}, IO: 0, ElapsedUS: 1},
	}
	for _, c := range cases {
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n') // json.Encoder.Encode appends a newline
		got := appendQueryResponseJSON(nil, c.Snapshot, c.Gen, c.IDs, c.IO, c.ElapsedUS)
		if string(got) != string(want) {
			t.Errorf("snapshot %q:\n got %s\nwant %s", c.Snapshot, got, want)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	ids := []int64{5, -17, 0, math.MaxInt64, math.MinInt64}
	frame := appendQueryResponseBinary(nil, "snap-1", 77, ids, 123, 456)
	name, gen, gotIDs, io, elapsed, ok := DecodeBinaryResponse(frame)
	if !ok {
		t.Fatal("frame did not decode")
	}
	if name != "snap-1" || gen != 77 || io != 123 || elapsed != 456 {
		t.Fatalf("envelope: name=%q gen=%d io=%d elapsed=%d", name, gen, io, elapsed)
	}
	if !reflect.DeepEqual(gotIDs, ids) {
		t.Fatalf("ids: got %v, want %v", gotIDs, ids)
	}

	// Truncated and corrupted frames are rejected, not misparsed.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, _, _, ok := DecodeBinaryResponse(frame[:cut]); ok {
			t.Fatalf("truncated frame of %d bytes decoded", cut)
		}
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, _, _, _, _, ok := DecodeBinaryResponse(bad); ok {
		t.Fatal("bad magic decoded")
	}
}

// TestQueryEncodePathZeroAllocs is the acceptance gate: at steady state
// (pool warmed), rendering a /query response — JSON or binary — performs
// zero heap allocations per operation.
func TestQueryEncodePathZeroAllocs(t *testing.T) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	run := func(name string, f func()) {
		f() // warm the pool outside the measurement
		if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	run("json", func() {
		bp := getRespBuf()
		*bp = appendQueryResponseJSON(*bp, "default", 3, ids, 64, 120)
		putRespBuf(bp)
	})
	run("binary", func() {
		bp := getRespBuf()
		*bp = appendQueryResponseBinary(*bp, "default", 3, ids, 64, 120)
		putRespBuf(bp)
	})
}

// TestParseQueryGETZeroAllocs pins the request-parsing half of the hot
// path: a plain GET /query parameter set parses without heap
// allocations.
func TestParseQueryGETZeroAllocs(t *testing.T) {
	u, err := url.Parse("http://host/query?snapshot=default&rect=0.5,1.5,10.25,20.75&from=10&to=90")
	if err != nil {
		t.Fatal(err)
	}
	r := &http.Request{Method: http.MethodGet, URL: u}
	qr, err := parseQueryGET(r)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Snapshot != "default" || !qr.HasFrom || !qr.HasTo || qr.From != 10 || qr.To != 90 {
		t.Fatalf("parsed %+v", qr)
	}
	if qr.Rect != [4]float64{0.5, 1.5, 10.25, 20.75} {
		t.Fatalf("rect %v", qr.Rect)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := parseQueryGET(r); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Errorf("parseQueryGET: %v allocs/op, want 0", allocs)
	}
}

func TestQueryParamUnescapes(t *testing.T) {
	raw := "snapshot=my%20snap&rect=0,0,1,1&t=5&plus=a+b"
	if v, ok := queryParam(raw, "snapshot"); !ok || v != "my snap" {
		t.Fatalf("snapshot = %q, %v", v, ok)
	}
	if v, ok := queryParam(raw, "plus"); !ok || v != "a b" {
		t.Fatalf("plus = %q, %v", v, ok)
	}
	if _, ok := queryParam(raw, "absent"); ok {
		t.Fatal("absent key reported present")
	}
	if v, ok := queryParam(raw, "t"); !ok || v != "5" {
		t.Fatalf("t = %q, %v", v, ok)
	}
}

func BenchmarkQueryResponseJSON(b *testing.B) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := getRespBuf()
		*bp = appendQueryResponseJSON(*bp, "default", 3, ids, 64, 120)
		putRespBuf(bp)
	}
}

func BenchmarkQueryResponseBinary(b *testing.B) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := getRespBuf()
		*bp = appendQueryResponseBinary(*bp, "default", 3, ids, 64, 120)
		putRespBuf(bp)
	}
}

func BenchmarkQueryResponseJSONReflect(b *testing.B) {
	// The encoding/json baseline the hand-rolled encoder replaced.
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i * 7337)
	}
	resp := queryResponse{Snapshot: "default", Gen: 3, Count: len(ids), IDs: ids, IO: 64, ElapsedUS: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQueryGET(b *testing.B) {
	u, err := url.Parse("http://host/query?snapshot=default&rect=0.5,1.5,10.25,20.75&from=10&to=90")
	if err != nil {
		b.Fatal(err)
	}
	r := &http.Request{Method: http.MethodGet, URL: u}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseQueryGET(r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHTTPBinaryProtocol drives the binary /query path end to end: both
// selectors (Accept header and ?format=binary) return a parseable frame
// whose ids match the JSON answer.
func TestHTTPBinaryProtocol(t *testing.T) {
	idx := buildIndex(t, "mem")
	path := saveContainer(t, idx)
	q := testQueries(t, 1)[0]
	want, err := stx.RunQuery(idx, q)
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{Workers: 2, CacheMB: 8})
	defer svc.Close()
	if _, err := svc.Registry().Load("default", path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	urlStr := fmt.Sprintf("%s/query?rect=%g,%g,%g,%g&t=%d",
		srv.URL, q.Rect.MinX, q.Rect.MinY, q.Rect.MaxX, q.Rect.MaxY, q.Interval.Start)

	fetch := func(accept, extra string) []byte {
		req, err := http.NewRequest(http.MethodGet, urlStr+extra, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
			t.Fatalf("Content-Type %q, want %q", ct, BinaryContentType)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	for _, frame := range [][]byte{fetch(BinaryContentType, ""), fetch("", "&format=binary")} {
		name, _, ids, _, _, ok := DecodeBinaryResponse(frame)
		if !ok {
			t.Fatal("binary frame did not decode")
		}
		if name != "default" {
			t.Fatalf("snapshot %q", name)
		}
		if !sameIDs(ids, want) {
			t.Fatalf("binary ids %v, want %v", ids, want)
		}
	}
}
