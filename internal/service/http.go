package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	stx "stindex"
)

// NewHandler exposes the service over HTTP/JSON — the API stserve
// binds:
//
//	GET|POST /query           run one query
//	GET      /snapshots       list registered snapshots
//	POST     /snapshots/load  {"name": ..., "path": ...} load or hot-swap
//	POST     /snapshots/drop  {"name": ...}
//	GET      /metrics         serving counters + per-snapshot stats
//	GET      /healthz         liveness
//
// GET /query parameters: snapshot (default "default"), rect=minx,miny,
// maxx,maxy, and either t=<instant> or from=<start>&to=<end>. POST /query
// takes the same fields as JSON: {"snapshot": ..., "rect": [minx,miny,
// maxx,maxy], "t": ...} or {"rect": [...], "from": ..., "to": ...}.
//
// The snapshot-management endpoints open operator-supplied paths on the
// server host; expose them only to trusted operators (stserve is an
// internal service, not an internet-facing one).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r)
	})
	mux.HandleFunc("/snapshots", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		infos := s.Registry().List()
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		writeJSON(w, http.StatusOK, map[string]any{"snapshots": infos})
	})
	mux.HandleFunc("/snapshots/load", func(w http.ResponseWriter, r *http.Request) {
		handleLoad(s, w, r)
	})
	mux.HandleFunc("/snapshots/drop", func(w http.ResponseWriter, r *http.Request) {
		handleDrop(s, w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// queryRequest is the POST /query body; GET parameters map onto the same
// fields.
type queryRequest struct {
	Snapshot string     `json:"snapshot"`
	Rect     [4]float64 `json:"rect"`
	T        *int64     `json:"t,omitempty"`
	From     *int64     `json:"from,omitempty"`
	To       *int64     `json:"to,omitempty"`
}

func (qr queryRequest) toQuery() (string, stx.Query, error) {
	name := qr.Snapshot
	if name == "" {
		name = "default"
	}
	rect := stx.Rect{MinX: qr.Rect[0], MinY: qr.Rect[1], MaxX: qr.Rect[2], MaxY: qr.Rect[3]}
	if rect.MinX > rect.MaxX || rect.MinY > rect.MaxY {
		return "", stx.Query{}, fmt.Errorf("degenerate rect %v", qr.Rect)
	}
	switch {
	case qr.T != nil:
		return name, stx.Query{Rect: rect, Interval: stx.Interval{Start: *qr.T, End: *qr.T + 1}}, nil
	case qr.From != nil && qr.To != nil:
		if *qr.To <= *qr.From {
			return "", stx.Query{}, fmt.Errorf("empty interval [%d, %d)", *qr.From, *qr.To)
		}
		return name, stx.Query{Rect: rect, Interval: stx.Interval{Start: *qr.From, End: *qr.To}}, nil
	default:
		return "", stx.Query{}, errors.New("provide t (snapshot) or from and to (range)")
	}
}

func parseQueryGET(r *http.Request) (queryRequest, error) {
	var qr queryRequest
	v := r.URL.Query()
	qr.Snapshot = v.Get("snapshot")
	rectStr := v.Get("rect")
	if rectStr == "" {
		return qr, errors.New("missing rect=minx,miny,maxx,maxy")
	}
	parts := strings.Split(rectStr, ",")
	if len(parts) != 4 {
		return qr, fmt.Errorf("rect wants 4 coordinates, got %d", len(parts))
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return qr, fmt.Errorf("rect coordinate %d: %v", i, err)
		}
		qr.Rect[i] = f
	}
	parseInt := func(key string) (*int64, error) {
		s := v.Get(key)
		if s == "" {
			return nil, nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", key, err)
		}
		return &n, nil
	}
	var err error
	if qr.T, err = parseInt("t"); err != nil {
		return qr, err
	}
	if qr.From, err = parseInt("from"); err != nil {
		return qr, err
	}
	if qr.To, err = parseInt("to"); err != nil {
		return qr, err
	}
	return qr, nil
}

// queryResponse is the /query answer.
type queryResponse struct {
	Snapshot  string  `json:"snapshot"`
	Gen       uint64  `json:"gen"`
	Count     int     `json:"count"`
	IDs       []int64 `json:"ids"`
	IO        int64   `json:"io"`
	ElapsedUS int64   `json:"elapsed_us"`
}

func handleQuery(s *Service, w http.ResponseWriter, r *http.Request) {
	var qr queryRequest
	var err error
	switch r.Method {
	case http.MethodGet:
		qr, err = parseQueryGET(r)
	case http.MethodPost:
		err = json.NewDecoder(r.Body).Decode(&qr)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	name, q, err := qr.toQuery()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	res, err := s.Query(r.Context(), name, q)
	if err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []int64{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Snapshot:  res.Snapshot,
		Gen:       res.Gen,
		Count:     len(ids),
		IDs:       ids,
		IO:        res.IO,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func handleLoad(s *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Name == "" || req.Path == "" {
		httpError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	snap, err := s.Registry().Load(req.Name, req.Path)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snap.info())
}

func handleDrop(s *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.Registry().Drop(req.Name); err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": req.Name})
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownSnapshot):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
