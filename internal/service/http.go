package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	stx "stindex"
)

// NewHandler exposes the service over HTTP/JSON — the API stserve
// binds:
//
//	GET|POST /query           run one query
//	GET      /snapshots       list registered snapshots
//	POST     /snapshots/load  {"name": ..., "path": ...} load or hot-swap
//	POST     /snapshots/drop  {"name": ...}
//	GET      /metrics         serving counters + per-snapshot stats
//	GET      /healthz         liveness
//
// GET /query parameters: snapshot (default "default"), kind (default
// "window"; also "knn" and "trajectory"), then per kind:
//
//	window:     rect=minx,miny,maxx,maxy and t=<instant> or from=&to=
//	knn:        x=<px>&y=<py>&t=<instant>&k=<count>
//	trajectory: rect=minx,miny,maxx,maxy and t= or from=&to=
//
// POST /query takes the same fields as JSON: {"snapshot": ..., "rect":
// [minx,miny,maxx,maxy], "t": ...}, {"rect": [...], "from": ..., "to":
// ...}, {"kind": "knn", "x": ..., "y": ..., "t": ..., "k": ...}, or
// {"kind": "trajectory", "rect": [...], "from": ..., "to": ...}.
//
// The snapshot-management endpoints open operator-supplied paths on the
// server host; expose them only to trusted operators (stserve is an
// internal service, not an internet-facing one).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, w, r)
	})
	mux.HandleFunc("/snapshots", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		infos := s.Registry().List()
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		writeJSON(w, http.StatusOK, map[string]any{"snapshots": infos})
	})
	mux.HandleFunc("/snapshots/load", func(w http.ResponseWriter, r *http.Request) {
		handleLoad(s, w, r)
	})
	mux.HandleFunc("/snapshots/drop", func(w http.ResponseWriter, r *http.Request) {
		handleDrop(s, w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// queryRequest is the parsed /query input; GET parameters and the POST
// JSON body map onto the same fields. Value fields plus presence flags
// (instead of pointers) keep the steady-state GET parse allocation-free.
type queryRequest struct {
	Snapshot string
	Kind     string // "", "window", "knn", "trajectory"
	Rect     [4]float64
	X, Y     float64 // knn query point
	T        int64
	From     int64
	To       int64
	K        int64
	HasT     bool
	HasFrom  bool
	HasTo    bool
	HasX     bool
	HasY     bool
	HasK     bool
	Binary   bool // answer with the binary frame (?format=binary)
}

// queryRequestJSON is the POST /query body — the wire shape with
// optional fields as pointers, decoded reflectively (the POST path is
// for ad-hoc use; GET is the hot path).
type queryRequestJSON struct {
	Snapshot string     `json:"snapshot"`
	Kind     string     `json:"kind,omitempty"`
	Rect     [4]float64 `json:"rect"`
	X        *float64   `json:"x,omitempty"`
	Y        *float64   `json:"y,omitempty"`
	T        *int64     `json:"t,omitempty"`
	From     *int64     `json:"from,omitempty"`
	To       *int64     `json:"to,omitempty"`
	K        *int64     `json:"k,omitempty"`
}

func (j queryRequestJSON) request() queryRequest {
	qr := queryRequest{Snapshot: j.Snapshot, Kind: j.Kind, Rect: j.Rect}
	if j.X != nil {
		qr.X, qr.HasX = *j.X, true
	}
	if j.Y != nil {
		qr.Y, qr.HasY = *j.Y, true
	}
	if j.T != nil {
		qr.T, qr.HasT = *j.T, true
	}
	if j.From != nil {
		qr.From, qr.HasFrom = *j.From, true
	}
	if j.To != nil {
		qr.To, qr.HasTo = *j.To, true
	}
	if j.K != nil {
		qr.K, qr.HasK = *j.K, true
	}
	return qr
}

func (qr queryRequest) toQuery() (string, stx.Query, error) {
	name := qr.Snapshot
	if name == "" {
		name = "default"
	}
	if qr.Kind == "knn" {
		switch {
		case !qr.HasX || !qr.HasY:
			return "", stx.Query{}, errors.New("knn wants x and y (query point)")
		case !qr.HasT:
			return "", stx.Query{}, errors.New("knn wants t (instant)")
		case !qr.HasK:
			return "", stx.Query{}, errors.New("knn wants k (neighbor count)")
		}
		return name, stx.KNNQuery(qr.X, qr.Y, qr.T, int(qr.K)), nil
	}
	var kind stx.QueryKind
	switch qr.Kind {
	case "", "window":
		kind = stx.KindWindow
	case "trajectory":
		kind = stx.KindTrajectory
	default:
		return "", stx.Query{}, fmt.Errorf("unknown kind %q (want window, knn, or trajectory)", qr.Kind)
	}
	rect := stx.Rect{MinX: qr.Rect[0], MinY: qr.Rect[1], MaxX: qr.Rect[2], MaxY: qr.Rect[3]}
	if rect.MinX > rect.MaxX || rect.MinY > rect.MaxY {
		return "", stx.Query{}, fmt.Errorf("degenerate rect %v", qr.Rect)
	}
	var iv stx.Interval
	switch {
	case qr.HasT:
		iv = stx.Interval{Start: qr.T, End: qr.T + 1}
	case qr.HasFrom && qr.HasTo:
		if qr.To <= qr.From {
			return "", stx.Query{}, fmt.Errorf("empty interval [%d, %d)", qr.From, qr.To)
		}
		iv = stx.Interval{Start: qr.From, End: qr.To}
	default:
		return "", stx.Query{}, errors.New("provide t (snapshot) or from and to (range)")
	}
	return name, stx.Query{Kind: kind, Rect: rect, Interval: iv}, nil
}

// queryParam returns one raw query-string value without materialising
// the url.Values map (r.URL.Query() allocates per request). Unescaping
// is deferred to the rare values that actually contain an escape.
func queryParam(rawQuery, key string) (string, bool) {
	for rawQuery != "" {
		var pair string
		pair, rawQuery, _ = strings.Cut(rawQuery, "&")
		k, v, _ := strings.Cut(pair, "=")
		if k != key {
			continue
		}
		if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
			if u, err := url.QueryUnescape(v); err == nil {
				return u, true
			}
		}
		return v, true
	}
	return "", false
}

// parseQueryGET parses the /query parameters straight off the raw query
// string. Steady state (plain numeric parameters, no percent escapes) it
// performs no heap allocations.
func parseQueryGET(r *http.Request) (queryRequest, error) {
	var qr queryRequest
	raw := r.URL.RawQuery
	qr.Snapshot, _ = queryParam(raw, "snapshot")
	qr.Kind, _ = queryParam(raw, "kind")
	rectStr, ok := queryParam(raw, "rect")
	if !ok || rectStr == "" {
		if qr.Kind != "knn" {
			return qr, errors.New("missing rect=minx,miny,maxx,maxy")
		}
	} else {
		for i := 0; i < 4; i++ {
			part, rest, found := strings.Cut(rectStr, ",")
			if i < 3 && !found {
				return qr, fmt.Errorf("rect wants 4 coordinates, got %d", i+1)
			}
			if i == 3 && found {
				return qr, errors.New("rect wants 4 coordinates, got more")
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return qr, fmt.Errorf("rect coordinate %d: %v", i, err)
			}
			qr.Rect[i] = f
			rectStr = rest
		}
	}
	parseInt := func(key string) (int64, bool, error) {
		s, ok := queryParam(raw, key)
		if !ok || s == "" {
			return 0, false, nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("%s: %v", key, err)
		}
		return n, true, nil
	}
	parseFloat := func(key string) (float64, bool, error) {
		s, ok := queryParam(raw, key)
		if !ok || s == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, false, fmt.Errorf("%s: %v", key, err)
		}
		return f, true, nil
	}
	var err error
	if qr.X, qr.HasX, err = parseFloat("x"); err != nil {
		return qr, err
	}
	if qr.Y, qr.HasY, err = parseFloat("y"); err != nil {
		return qr, err
	}
	if qr.T, qr.HasT, err = parseInt("t"); err != nil {
		return qr, err
	}
	if qr.From, qr.HasFrom, err = parseInt("from"); err != nil {
		return qr, err
	}
	if qr.To, qr.HasTo, err = parseInt("to"); err != nil {
		return qr, err
	}
	if qr.K, qr.HasK, err = parseInt("k"); err != nil {
		return qr, err
	}
	if format, ok := queryParam(raw, "format"); ok && format == "binary" {
		qr.Binary = true
	}
	return qr, nil
}

// queryResponse documents the /query JSON answer and is what clients
// (and this package's tests) decode it into. The server side never
// marshals this struct: the answer is rendered by the hand-rolled
// encoder in encode.go (which mirrors this shape exactly) into a pooled
// buffer, so the steady-state serving path does not allocate per
// response. The binary frame (encode.go) carries the same fields.
type queryResponse struct {
	Snapshot     string            `json:"snapshot"`
	Gen          uint64            `json:"gen"`
	Count        int               `json:"count"`
	IDs          []int64           `json:"ids"`
	Neighbors    []queryNeighbor   `json:"neighbors,omitempty"`
	Trajectories []queryTrajectory `json:"trajectories,omitempty"`
	IO           int64             `json:"io"`
	ElapsedUS    int64             `json:"elapsed_us"`
}

// queryNeighbor is one ranked kNN answer entry (kind=knn responses).
type queryNeighbor struct {
	ID    int64   `json:"id"`
	Dist2 float64 `json:"dist2"`
}

// queryTrajectory is one trajectory answer entry (kind=trajectory
// responses): the object and how many of its recorded pieces matched.
type queryTrajectory struct {
	ID     int64 `json:"id"`
	Pieces int   `json:"pieces"`
}

func handleQuery(s *Service, w http.ResponseWriter, r *http.Request) {
	var qr queryRequest
	var err error
	switch r.Method {
	case http.MethodGet:
		qr, err = parseQueryGET(r)
	case http.MethodPost:
		var body queryRequestJSON
		if err = json.NewDecoder(r.Body).Decode(&body); err == nil {
			qr = body.request()
			if format, ok := queryParam(r.URL.RawQuery, "format"); ok && format == "binary" {
				qr.Binary = true
			}
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	name, q, err := qr.toQuery()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	binary := qr.Binary || r.Header.Get("Accept") == BinaryContentType
	start := time.Now()
	res, err := s.Query(r.Context(), name, q)
	if err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	elapsed := time.Since(start).Microseconds()

	bp := getRespBuf()
	if binary {
		*bp = appendQueryResponseBinary(*bp, res, elapsed)
		w.Header().Set("Content-Type", BinaryContentType)
	} else {
		*bp = appendQueryResponseJSON(*bp, res, elapsed)
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(*bp)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(*bp)
	putRespBuf(bp)
}

func handleLoad(s *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Name == "" || req.Path == "" {
		httpError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	snap, err := s.Registry().Load(req.Name, req.Path)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snap.info())
}

func handleDrop(s *Service, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.Registry().Drop(req.Name); err != nil {
		httpError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": req.Name})
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, stx.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownSnapshot):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
