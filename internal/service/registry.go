package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	stx "stindex"

	"stindex/internal/pagefile"
	"stindex/internal/sharding"
)

// ErrUnknownSnapshot is returned by Acquire and the query paths when the
// requested snapshot name is not (or no longer) registered.
var ErrUnknownSnapshot = errors.New("service: unknown snapshot")

// Registry is the snapshot registry: a named collection of opened index
// containers that can be loaded, hot-swapped and dropped atomically while
// queries are in flight. Every snapshot is refcounted — the registry
// holds one reference while the snapshot is current, and every Acquire
// takes another — so a swap or drop retires the old snapshot immediately
// (no new queries can reach it) but closes its container file only after
// the last in-flight lease is released. That is what makes hot-swapping
// safe: readers never observe a closed store.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	snaps map[string]*Snapshot
	gen   atomic.Uint64

	// cache is the shared striped page cache over every loaded container
	// (nil = no shared cache); openBackend is the container read flavour.
	cache       *pagefile.SharedCache
	openBackend stx.Backend
}

// RegistryConfig configures the registry's serving read path.
type RegistryConfig struct {
	// CacheBytes sizes the shared striped page cache over every loaded
	// container: raw pages and decoded nodes that miss a session's
	// private pool are served from (and published to) one registry-wide
	// cache keyed by snapshot generation, with per-stripe LRU eviction
	// against this byte budget. <= 0 disables the shared cache (the
	// historical behaviour: every session reads through to the store).
	CacheBytes int64
	// OpenBackend is the page-read flavour Load opens containers with
	// (stx.BackendDisk lazy window, stx.BackendMmap mapping,
	// stx.BackendMemory eager). Empty defers to STINDEX_BACKEND.
	OpenBackend stx.Backend
}

// NewRegistry creates an empty snapshot registry with no shared cache
// and the environment-selected open flavour.
func NewRegistry() *Registry {
	return NewRegistryConfig(RegistryConfig{})
}

// NewRegistryConfig creates an empty snapshot registry with the given
// read-path configuration.
func NewRegistryConfig(cfg RegistryConfig) *Registry {
	return &Registry{
		snaps:       make(map[string]*Snapshot),
		cache:       pagefile.NewSharedCache(cfg.CacheBytes),
		openBackend: cfg.OpenBackend,
	}
}

// Cache returns the registry's shared page cache (nil when disabled) —
// for metrics and tests.
func (r *Registry) Cache() *pagefile.SharedCache { return r.cache }

// Snapshot is one registered index: a frozen, queryable container plus
// its refcount and per-snapshot serving statistics. Snapshots are
// created by Load/Publish and only ever handed out through leases.
type Snapshot struct {
	name string
	gen  uint64 // registry-wide unique; bumped on every load/swap
	path string // source container, "" for Publish
	idx  stx.Index
	// shared serialises queries for index kinds that cannot produce
	// per-worker views (no QueryViewer); nil otherwise.
	shared *stx.SyncIndex
	// refs counts the registry's own reference plus one per live lease;
	// the container closes when it reaches zero.
	refs    atomic.Int64
	queries atomic.Int64
	stats   pagefile.AtomicStats
	// cache/cstats tie a loaded snapshot to the registry's shared page
	// cache: cstats accumulates this snapshot's shared-hit/store-read
	// split, and release retires the generation's cache entries once the
	// last lease drains. Both nil for Publish-ed or cache-less snapshots.
	cache  *pagefile.SharedCache
	cstats *pagefile.CacheCounters
}

// Name returns the snapshot's registry name.
func (s *Snapshot) Name() string { return s.name }

// Gen returns the snapshot's registry-wide unique generation; a swap
// under the same name installs a snapshot with a higher generation.
func (s *Snapshot) Gen() uint64 { return s.gen }

// recordQuery folds one query's buffer traffic into the snapshot's
// serving statistics.
func (s *Snapshot) recordQuery(delta pagefile.Stats) {
	s.queries.Add(1)
	s.stats.Add(delta)
}

// release drops one reference, closing the container when the last
// holder lets go. Close errors are returned to the releasing caller —
// in practice the last lease or the retiring registry operation.
// Retiring also drops the generation's shared-cache entries: this runs
// strictly after the last lease released, so no in-flight reader can
// repopulate them, and the generation-keyed cache guarantees no later
// generation could ever have seen them.
func (s *Snapshot) release() error {
	if s.refs.Add(-1) == 0 {
		err := stx.CloseIndex(s.idx)
		s.cache.Retire(s.gen)
		return err
	}
	return nil
}

// Lease is a counted reference to a snapshot. A lease pins the
// snapshot's container open: hot-swaps and drops retire the snapshot but
// its pages stay readable until Release. Leases are cheap (one atomic
// add) and must be released exactly once.
type Lease struct {
	snap *Snapshot
}

// Snapshot returns the leased snapshot.
func (l *Lease) Snapshot() *Snapshot { return l.snap }

// Index returns the leased snapshot's underlying index. Callers must
// treat it as read-only and must not retain it past Release.
func (l *Lease) Index() stx.Index { return l.snap.idx }

// View returns an index through which this lease's holder may query: a
// private read-only view (own buffer pool and decode cache over the
// shared frozen store) when the kind supports it, else the snapshot's
// mutex-guarded shared wrapper. The view must not outlive the snapshot's
// generation — cache it keyed by (name, gen), as Session does.
func (l *Lease) View() stx.Index {
	if qv, ok := l.snap.idx.(stx.QueryViewer); ok {
		return qv.QueryView()
	}
	return l.snap.shared
}

// Release returns the lease's reference. The error is non-nil only when
// this release was the one that closed a retired snapshot's container
// and the close failed.
func (l *Lease) Release() error {
	return l.snap.release()
}

// Acquire leases the named snapshot.
func (r *Registry) Acquire(name string) (*Lease, error) {
	r.mu.RLock()
	snap, ok := r.snaps[name]
	if ok {
		// The registry's own reference is still held (retirement removes
		// the map entry first, under the write lock), so the count is
		// necessarily >= 1 here and the snapshot cannot close under us.
		snap.refs.Add(1)
	}
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSnapshot, name)
	}
	return &Lease{snap: snap}, nil
}

// Load opens the container at path lazily and installs it under name,
// atomically replacing (hot-swapping) any snapshot previously registered
// under that name. The replaced snapshot is retired: new queries go to
// the new snapshot immediately, in-flight leases finish on the old one,
// and its container file closes when the last lease is released.
//
// If path is a shard manifest (sniffed by magic) the snapshot is opened
// as a scatter-gather Sharded index over every shard container the
// manifest names. The wrap closure below is shared by all shards, so
// extent numbering — and with it the shared cache's (gen, ext) keying
// and global byte budget — runs across the whole sharded snapshot.
func (r *Registry) Load(name, path string) (*Snapshot, error) {
	// The generation is allocated before the container opens so the
	// shared-cache wrapper can key the extent stores by it: entries of
	// different loads (including a swap's old and new snapshot) can then
	// never collide, whatever the timing.
	gen := r.gen.Add(1)
	opts, cstats := r.openOptions(gen)
	var idx stx.Index
	var err error
	if sharding.IsManifest(path) {
		idx, err = OpenSharded(path, opts)
	} else {
		idx, err = stx.OpenIndexOptions(path, opts)
	}
	if err != nil {
		return nil, err
	}
	return r.install(name, path, idx, gen, cstats)
}

// openOptions builds the container open options for a snapshot of
// generation gen: the registry's read backend plus (when the shared
// cache is on) a store wrapper that keys the container's extents by
// (gen, ext) in the shared page cache, with cstats accumulating the
// snapshot's shared-hit/store-read split.
func (r *Registry) openOptions(gen uint64) (stx.OpenOptions, *pagefile.CacheCounters) {
	var cstats *pagefile.CacheCounters
	var wrap stx.StoreWrapper
	if r.cache != nil {
		cstats = &pagefile.CacheCounters{}
		ext := uint32(0)
		wrap = func(s pagefile.Store) pagefile.Store {
			ws := r.cache.WrapStore(gen, ext, s, cstats)
			ext++
			return ws
		}
	}
	return stx.OpenOptions{Backend: r.openBackend, Wrap: wrap}, cstats
}

// PublishOpener installs a caller-built snapshot with Load's cache
// participation: the registry allocates the generation and hands open
// the cache-wrapping OpenOptions, so any container the callback opens
// through them serves its lazy page reads from (and publishes them to)
// the shared page cache, generation-keyed exactly like a Load-ed
// snapshot — including retirement of its cache entries when the swap
// drains. The ingestion pipeline uses this to publish its combined
// frozen+live views without giving up the cache on the frozen part.
//
// The callback owns nothing on error; on success the registry takes
// ownership of the returned index (CloseIndex on retirement), with the
// same hot-swap semantics as Load.
func (r *Registry) PublishOpener(name string, open func(stx.OpenOptions) (stx.Index, error)) (*Snapshot, error) {
	gen := r.gen.Add(1)
	opts, cstats := r.openOptions(gen)
	idx, err := open(opts)
	if err != nil {
		// Nothing was installed; drop any cache entries the callback's
		// partial open may have published under this generation.
		r.cache.Retire(gen)
		return nil, err
	}
	return r.install(name, "", idx, gen, cstats)
}

// Publish installs an already-built or eagerly decoded index under name,
// with the same hot-swap semantics as Load. The registry takes ownership:
// the index is closed (CloseIndex) when the snapshot is retired and
// drained. The index must be frozen — no concurrent mutation while
// registered.
func (r *Registry) Publish(name string, idx stx.Index) (*Snapshot, error) {
	// Published indexes are already fully in memory; the shared page cache
	// would only duplicate their pages, so they serve uncached.
	return r.install(name, "", idx, r.gen.Add(1), nil)
}

func (r *Registry) install(name, path string, idx stx.Index, gen uint64, cstats *pagefile.CacheCounters) (*Snapshot, error) {
	snap := &Snapshot{
		name:   name,
		gen:    gen,
		path:   path,
		idx:    idx,
		cstats: cstats,
	}
	if cstats != nil {
		snap.cache = r.cache
	}
	if _, ok := idx.(stx.QueryViewer); !ok {
		snap.shared = stx.Synchronized(idx)
	}
	snap.refs.Store(1) // the registry's reference
	r.mu.Lock()
	old := r.snaps[name]
	r.snaps[name] = snap
	r.mu.Unlock()
	if old != nil {
		if err := old.release(); err != nil {
			return snap, fmt.Errorf("service: closing replaced snapshot %q: %w", name, err)
		}
	}
	return snap, nil
}

// Drop retires the named snapshot: it disappears from the registry
// immediately and its container closes once the last in-flight lease is
// released.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	snap, ok := r.snaps[name]
	if ok {
		delete(r.snaps, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSnapshot, name)
	}
	return snap.release()
}

// Names returns the registered snapshot names, unordered.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.snaps))
	for name := range r.snaps {
		names = append(names, name)
	}
	return names
}

// SnapshotInfo is one registry entry's externally visible state.
//
// The caching tiers report separately, so the figures are no longer
// conflated: Hits are requests absorbed by the sessions' private buffer
// pools; of the remainder (Reads), SharedHits were absorbed by the
// registry-wide shared page cache and StoreReads actually reached the
// backing store. DecodeHits and Decodes split the decoded-node traffic
// the same way. HitRate is the fraction of page requests served without
// touching the backing store: (Hits + SharedHits) / (Hits + Reads) —
// with no shared cache it degenerates to the private-pool rate.
type SnapshotInfo struct {
	Name    string `json:"name"`
	Gen     uint64 `json:"gen"`
	Kind    string `json:"kind"`
	Path    string `json:"path,omitempty"`
	Records int    `json:"records"`
	Pages   int    `json:"pages"`
	Bytes   int64  `json:"bytes"`
	Leases  int64  `json:"leases"` // live leases, excluding the registry's own reference
	Queries int64  `json:"queries"`
	// Reads and Hits are the private buffer-pool split (kept under their
	// historical JSON names: every read below counts here as a Read).
	Reads int64 `json:"reads"`
	Hits  int64 `json:"hits"`
	// SharedHits + StoreReads partition Reads when the shared cache is on.
	SharedHits int64 `json:"shared_hits"`
	StoreReads int64 `json:"store_reads"`
	// Decodes are node parses actually performed; DecodeHits were reused
	// from the shared cache instead.
	DecodeHits int64   `json:"decode_hits"`
	Decodes    int64   `json:"decodes"`
	HitRate    float64 `json:"hit_rate"`
	// Sharded snapshots only: the scatter-gather totals. ShardedQueries
	// counts fan-out queries; each entry of Shards records how many of
	// them that shard served (Queries) or was pruned from (Pruned), so
	// Queries + Pruned == ShardedQueries holds per shard.
	ShardedQueries int64       `json:"sharded_queries,omitempty"`
	Shards         []ShardStat `json:"shards,omitempty"`
}

func (s *Snapshot) info() SnapshotInfo {
	st := s.stats.Load()
	cv := s.cstats.Load()
	info := SnapshotInfo{
		Name:       s.name,
		Gen:        s.gen,
		Kind:       s.idx.Kind(),
		Path:       s.path,
		Records:    s.idx.Records(),
		Pages:      s.idx.Pages(),
		Bytes:      s.idx.Bytes(),
		Leases:     s.refs.Load() - 1,
		Queries:    s.queries.Load(),
		Reads:      st.Reads,
		Hits:       st.Hits,
		SharedHits: cv.SharedHits,
		StoreReads: cv.StoreReads,
		DecodeHits: cv.DecodeHits,
		Decodes:    cv.Decodes,
	}
	if total := st.Hits + st.Reads; total > 0 {
		info.HitRate = float64(st.Hits+cv.SharedHits) / float64(total)
	}
	if sh, ok := s.idx.(*Sharded); ok {
		info.ShardedQueries = sh.Queries()
		info.Shards = sh.ShardStats()
	}
	return info
}

// List returns the state of every registered snapshot, unordered.
func (r *Registry) List() []SnapshotInfo {
	r.mu.RLock()
	snaps := make([]*Snapshot, 0, len(r.snaps))
	for _, s := range r.snaps {
		snaps = append(snaps, s)
	}
	r.mu.RUnlock()
	infos := make([]SnapshotInfo, len(snaps))
	for i, s := range snaps {
		infos[i] = s.info()
	}
	return infos
}

// Close drops every snapshot. In-flight leases still drain as usual; the
// first close error (if any) is returned.
func (r *Registry) Close() error {
	var first error
	for _, name := range r.Names() {
		if err := r.Drop(name); err != nil && first == nil && !errors.Is(err, ErrUnknownSnapshot) {
			first = err
		}
	}
	return first
}
