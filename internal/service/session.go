package service

import (
	"context"

	stx "stindex"

	"stindex/internal/pagefile"
)

// Session is one worker's private query state: for every snapshot it has
// served it caches a read-only view — a private LRU buffer pool and
// decoded-node cache over the snapshot's shared frozen store — keyed by
// the snapshot's generation, so a hot-swap transparently invalidates the
// old view. Unlike the paper's cold-cache measurement discipline, a
// serving session keeps its buffer warm across queries; the per-snapshot
// buffer hit rate in /metrics comes from exactly these pools.
//
// A Session is NOT safe for concurrent use — it is the "one goroutine,
// one view" end of the pagefile concurrency contract. The Service owns
// one Session per worker; embedders doing their own scheduling can run
// one Session per goroutine directly against a shared Registry.
type Session struct {
	reg   *Registry
	views map[string]sessionView
}

type sessionView struct {
	gen  uint64
	view stx.Index
	// prev is the view's cumulative I/O counter at the end of the last
	// query; the difference across a query is that query's traffic.
	prev stx.IOStats
}

// NewSession creates a session over the registry.
func NewSession(reg *Registry) *Session {
	return &Session{reg: reg, views: make(map[string]sessionView)}
}

// Result is one served query's outcome.
type Result struct {
	// Kind echoes the query kind that produced this result; it selects
	// which of the payload slices below is meaningful.
	Kind stx.QueryKind
	// IDs are the matching object ids (de-duplicated, discovery order).
	// Populated for every kind: kNN and trajectory answers carry their
	// ids here too, in answer order.
	IDs []int64
	// Neighbors is the ranked kNN answer (Kind == stx.KindKNN only).
	Neighbors []stx.Neighbor
	// Trajectories is the per-object piece-count answer
	// (Kind == stx.KindTrajectory only).
	Trajectories []stx.TrajectoryHit
	// IO is the number of disk accesses this query cost through the
	// session's warm buffer pool. For snapshot kinds without per-worker
	// views (no QueryViewer — e.g. stream indexes) concurrent queries
	// share one pool and IO is only an approximation.
	IO int64
	// Snapshot and Gen identify which snapshot (and which generation of
	// it, across hot-swaps) answered.
	Snapshot string
	Gen      uint64
}

// Query leases the named snapshot, runs q on this session's view of it,
// and releases the lease. The context is checked before execution; the
// tree walk itself is not interruptible (queries are short).
func (s *Session) Query(ctx context.Context, snapshot string, q stx.Query) (Result, error) {
	lease, err := s.reg.Acquire(snapshot)
	if err != nil {
		return Result{}, err
	}
	defer lease.Release()
	return s.QueryLeased(ctx, lease, q)
}

// QueryLeased runs q against an already-acquired lease — the batching
// path, which acquires one lease for a run of same-snapshot requests.
// The caller keeps ownership of the lease.
func (s *Session) QueryLeased(ctx context.Context, lease *Lease, q stx.Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	snap := lease.Snapshot()
	sv, ok := s.views[snap.name]
	if !ok || sv.gen != snap.gen {
		// First visit, or the snapshot was hot-swapped: build a fresh
		// view over the new generation. The old view (if any) held no
		// resources beyond its buffers; dropping the reference is enough.
		sv = sessionView{gen: snap.gen, view: lease.View()}
		sv.prev = sv.view.IOStats()
	}
	qr, err := stx.RunQueryResult(sv.view, q)
	after := sv.view.IOStats()
	delta := pagefile.Stats{
		Reads:  after.Reads - sv.prev.Reads,
		Writes: after.Writes - sv.prev.Writes,
		Hits:   after.Hits - sv.prev.Hits,
	}
	sv.prev = after
	s.views[snap.name] = sv
	snap.recordQuery(delta)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Kind:         q.Kind,
		IDs:          qr.IDs,
		Neighbors:    qr.Neighbors,
		Trajectories: qr.Trajectories,
		IO:           delta.Reads + delta.Writes,
		Snapshot:     snap.name,
		Gen:          snap.gen,
	}, nil
}
