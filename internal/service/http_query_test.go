package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	stx "stindex"
)

// TestHTTPQueryKinds drives the kNN and trajectory query kinds through
// the real HTTP handler, GET and POST, and checks the answers verbatim
// against the engine queried directly — the wire encoding must not
// perturb a single bit (ids, dist2 floats, piece counts, order).
func TestHTTPQueryKinds(t *testing.T) {
	idx := buildIndex(t, stx.BackendMemory)
	path := saveContainer(t, idx)
	svc := New(Config{Workers: 2})
	defer svc.Close()
	if _, err := svc.Registry().Load("default", path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	probes := []struct {
		x, y float64
		at   int64
		k    int
	}{
		{0.5, 0.5, 100, 1},
		{0.1, 0.9, 250, 5},
		{0.75, 0.25, 400, 17},
		{0.5, 0.5, 100, 1 << 20}, // k far beyond the population: full ranking
	}
	for i, p := range probes {
		want, err := idx.Nearest(p.x, p.y, p.at, p.k)
		if err != nil {
			t.Fatal(err)
		}
		var got queryResponse
		url := fmt.Sprintf("%s/query?kind=knn&x=%g&y=%g&t=%d&k=%d", srv.URL, p.x, p.y, p.at, p.k)
		if resp := getJSON(t, url, &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("knn GET %d: status %d", i, resp.StatusCode)
		}
		checkNeighbors(t, fmt.Sprintf("knn GET %d", i), got, want)

		body := map[string]any{"kind": "knn", "x": p.x, "y": p.y, "t": p.at, "k": p.k}
		resp, data := postJSON(t, srv.URL+"/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("knn POST %d: status %d body %s", i, resp.StatusCode, data)
		}
		got = queryResponse{}
		mustUnmarshal(t, data, &got)
		checkNeighbors(t, fmt.Sprintf("knn POST %d", i), got, want)
	}

	regions := []struct {
		r  stx.Rect
		iv stx.Interval
	}{
		{stx.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}, stx.Interval{Start: 0, End: 500}},
		{stx.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}, stx.Interval{Start: 100, End: 101}},
		{stx.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, stx.Interval{Start: 480, End: 520}},
	}
	for i, c := range regions {
		want, err := idx.Trajectory(c.r, c.iv)
		if err != nil {
			t.Fatal(err)
		}
		var got queryResponse
		url := fmt.Sprintf("%s/query?kind=trajectory&rect=%g,%g,%g,%g&from=%d&to=%d",
			srv.URL, c.r.MinX, c.r.MinY, c.r.MaxX, c.r.MaxY, c.iv.Start, c.iv.End)
		if resp := getJSON(t, url, &got); resp.StatusCode != http.StatusOK {
			t.Fatalf("trajectory GET %d: status %d", i, resp.StatusCode)
		}
		checkTrajectories(t, fmt.Sprintf("trajectory GET %d", i), got, want)

		body := map[string]any{
			"kind": "trajectory",
			"rect": []float64{c.r.MinX, c.r.MinY, c.r.MaxX, c.r.MaxY},
			"from": c.iv.Start, "to": c.iv.End,
		}
		resp, data := postJSON(t, srv.URL+"/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trajectory POST %d: status %d body %s", i, resp.StatusCode, data)
		}
		got = queryResponse{}
		mustUnmarshal(t, data, &got)
		checkTrajectories(t, fmt.Sprintf("trajectory POST %d", i), got, want)
	}

	// Malformed requests map to 400, never 500: each missing kNN
	// parameter, non-finite point coordinates, invalid k (engine-level
	// ErrBadQuery), and an unknown kind string.
	for _, bad := range []string{
		"kind=knn&y=0.5&t=100&k=3",       // missing x
		"kind=knn&x=0.5&y=0.5&t=100",     // missing k
		"kind=knn&x=0.5&y=0.5&k=3",       // missing t
		"kind=knn&x=NaN&y=0.5&t=100&k=3", // non-finite point -> ErrBadQuery
		"kind=knn&x=0.5&y=0.5&t=100&k=0", // k < 1 -> ErrBadQuery
		"kind=knn&x=0.5&y=0.5&t=100&k=-2",
		"kind=warp&rect=0,0,1,1&t=100",  // unknown kind
		"kind=trajectory&from=0&to=100", // trajectory without rect
	} {
		if resp := getJSON(t, srv.URL+"/query?"+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

func checkNeighbors(t *testing.T, label string, got queryResponse, want []stx.Neighbor) {
	t.Helper()
	if len(got.Neighbors) != len(want) || got.Count != len(want) {
		t.Fatalf("%s: %d neighbors (count %d), want %d", label, len(got.Neighbors), got.Count, len(want))
	}
	for j, nb := range want {
		if got.Neighbors[j].ID != nb.ObjectID || got.Neighbors[j].Dist2 != nb.Dist2 {
			t.Fatalf("%s neighbor %d: got {%d %v}, want {%d %v}",
				label, j, got.Neighbors[j].ID, got.Neighbors[j].Dist2, nb.ObjectID, nb.Dist2)
		}
		if got.IDs[j] != nb.ObjectID {
			t.Fatalf("%s: ids[%d] = %d, want %d", label, j, got.IDs[j], nb.ObjectID)
		}
	}
}

func checkTrajectories(t *testing.T, label string, got queryResponse, want []stx.TrajectoryHit) {
	t.Helper()
	if len(got.Trajectories) != len(want) || got.Count != len(want) {
		t.Fatalf("%s: %d trajectories (count %d), want %d", label, len(got.Trajectories), got.Count, len(want))
	}
	for j, th := range want {
		if got.Trajectories[j].ID != th.ObjectID || got.Trajectories[j].Pieces != th.Pieces {
			t.Fatalf("%s hit %d: got {%d %d}, want {%d %d}",
				label, j, got.Trajectories[j].ID, got.Trajectories[j].Pieces, th.ObjectID, th.Pieces)
		}
	}
}

// TestHotSwapDuringKNN hammers kNN queries from many goroutines while
// the served snapshot is hot-swapped underneath them. Every answer must
// be complete and correct for whichever generation served it (both
// containers hold the same index, so answers are generation-invariant),
// and the race detector must stay silent across the swap boundary.
func TestHotSwapDuringKNN(t *testing.T) {
	idx := buildIndex(t, stx.BackendMemory)
	pathA := saveContainer(t, idx)
	pathB := saveContainer(t, idx)
	want, err := idx.Nearest(0.5, 0.5, 250, 10)
	if err != nil {
		t.Fatal(err)
	}

	svc := New(Config{Workers: 4, QueueDepth: 64})
	defer svc.Close()
	if _, err := svc.Registry().Load("default", pathA); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	url := srv.URL + "/query?kind=knn&x=0.5&y=0.5&t=250&k=10"

	const clients = 6
	const rounds = 40
	var clientWG sync.WaitGroup
	errCh := make(chan error, clients+1)
	fetch := func(i int) error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return fmt.Errorf("round %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("round %d: status %d", i, resp.StatusCode)
		}
		if len(qr.Neighbors) != len(want) {
			return fmt.Errorf("round %d: %d neighbors, want %d", i, len(qr.Neighbors), len(want))
		}
		for j, nb := range want {
			if qr.Neighbors[j].ID != nb.ObjectID || qr.Neighbors[j].Dist2 != nb.Dist2 {
				return fmt.Errorf("round %d neighbor %d: got {%d %v}, want {%d %v}",
					i, j, qr.Neighbors[j].ID, qr.Neighbors[j].Dist2, nb.ObjectID, nb.Dist2)
			}
		}
		return nil
	}
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for i := 0; i < rounds; i++ {
				if err := fetch(i); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Swap back and forth while the clients run.
	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		paths := []string{pathB, pathA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Registry().Load("default", paths[i%2]); err != nil {
				errCh <- fmt.Errorf("swap %d: %w", i, err)
				return
			}
		}
	}()

	clientWG.Wait()
	close(stop)
	swapWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
