package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBox3(rng *rand.Rand) Box3 {
	var b Box3
	for d := 0; d < 3; d++ {
		lo := rng.Float64()
		b.Min[d] = lo
		b.Max[d] = lo + rng.Float64()
	}
	return b
}

func TestBox3FromBox(t *testing.T) {
	b := Box3FromBox(NewBox(Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4}, Interval{Start: 100, End: 200}), 0.001)
	want := Box3{Min: [3]float64{0.1, 0.2, 0.1}, Max: [3]float64{0.3, 0.4, 0.2}}
	if b != want {
		t.Fatalf("got %v, want %v", b, want)
	}
}

func TestBox3Measures(t *testing.T) {
	b := Box3{Min: [3]float64{0, 0, 0}, Max: [3]float64{2, 3, 4}}
	if b.Volume() != 24 {
		t.Fatalf("Volume = %g", b.Volume())
	}
	if b.Margin() != 9 {
		t.Fatalf("Margin = %g", b.Margin())
	}
	if c := b.Center(); c != [3]float64{1, 1.5, 2} {
		t.Fatalf("Center = %v", c)
	}
	if EmptyBox3().Volume() != 0 || EmptyBox3().Margin() != 0 {
		t.Fatal("empty box measures should be 0")
	}
}

func TestBox3UnionIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox3(r), randBox3(r)
		u := a.UnionBox3(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if u != b.UnionBox3(a) {
			return false
		}
		if a.Intersects(b) != (a.OverlapVolume(b) > 0 || touching3(a, b)) {
			return false
		}
		if a.OverlapVolume(b) > math.Min(a.Volume(), b.Volume())+1e-12 {
			return false
		}
		if a.Enlargement3(b) < -1e-12 {
			return false
		}
		if a.CenterDistance2(a) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// touching3 reports boundary contact (intersecting with zero overlap
// volume).
func touching3(a, b Box3) bool {
	for d := 0; d < 3; d++ {
		if a.Min[d] > b.Max[d] || b.Min[d] > a.Max[d] {
			return false
		}
	}
	for d := 0; d < 3; d++ {
		if a.Min[d] == b.Max[d] || b.Min[d] == a.Max[d] {
			return true
		}
	}
	return false
}

func TestBox3EmptyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := EmptyBox3()
	for i := 0; i < 30; i++ {
		b := randBox3(rng)
		if e.UnionBox3(b) != b || b.UnionBox3(e) != b {
			t.Fatal("EmptyBox3 is not the union identity")
		}
		if e.Intersects(b) || e.Contains(b) || b.Contains(e) {
			t.Fatal("EmptyBox3 relations should be false")
		}
	}
}
