package geom

import (
	"fmt"
	"math"
)

// Box3 is a 3-dimensional axis-parallel box over float coordinates. The 3D
// R*-tree treats time as a third spatial dimension: callers scale the
// discrete time axis into the unit range (the paper scales it "to the unit
// range first" before insertion) and store the result as Min[2]/Max[2].
type Box3 struct {
	Min, Max [3]float64
}

// EmptyBox3 returns the identity element for UnionBox3.
func EmptyBox3() Box3 {
	return Box3{
		Min: [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
}

// Box3FromBox converts a spatiotemporal box to a 3D float box, scaling the
// time axis by timeScale (typically 1/horizon so time lands in [0,1]).
// The half-open time interval [Start, End) maps to the closed float range
// [Start*s, End*s].
func Box3FromBox(b Box, timeScale float64) Box3 {
	return Box3{
		Min: [3]float64{b.MinX, b.MinY, float64(b.Start) * timeScale},
		Max: [3]float64{b.MaxX, b.MaxY, float64(b.End) * timeScale},
	}
}

// IsEmpty reports whether the box is inverted on any axis.
func (b Box3) IsEmpty() bool {
	for d := 0; d < 3; d++ {
		if b.Min[d] > b.Max[d] {
			return true
		}
	}
	return false
}

// Volume returns the product of the three extents.
func (b Box3) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for d := 0; d < 3; d++ {
		v *= b.Max[d] - b.Min[d]
	}
	return v
}

// Margin returns the sum of the three edge lengths (the R* split margin
// metric, up to a constant factor).
func (b Box3) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	m := 0.0
	for d := 0; d < 3; d++ {
		m += b.Max[d] - b.Min[d]
	}
	return m
}

// Center returns the box center.
func (b Box3) Center() [3]float64 {
	return [3]float64{
		(b.Min[0] + b.Max[0]) / 2,
		(b.Min[1] + b.Max[1]) / 2,
		(b.Min[2] + b.Max[2]) / 2,
	}
}

// UnionBox3 returns the smallest box covering both operands.
func (b Box3) UnionBox3(o Box3) Box3 {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	out := b
	for d := 0; d < 3; d++ {
		out.Min[d] = math.Min(out.Min[d], o.Min[d])
		out.Max[d] = math.Max(out.Max[d], o.Max[d])
	}
	return out
}

// Intersects reports whether the boxes share a point (closed semantics).
// The comparisons are phrased positively so NaN coordinates fail closed
// (match nothing), the same convention as Rect.Intersects — a query box
// carrying NaN must not degenerate into a match-everything wildcard.
func (b Box3) Intersects(o Box3) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for d := 0; d < 3; d++ {
		if !(b.Min[d] <= o.Max[d] && o.Min[d] <= b.Max[d]) {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside b.
func (b Box3) Contains(o Box3) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for d := 0; d < 3; d++ {
		if o.Min[d] < b.Min[d] || o.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// OverlapVolume returns the volume of the intersection.
func (b Box3) OverlapVolume(o Box3) float64 {
	v := 1.0
	for d := 0; d < 3; d++ {
		lo := math.Max(b.Min[d], o.Min[d])
		hi := math.Min(b.Max[d], o.Max[d])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enlargement3 returns the volume increase needed for b to also cover o.
func (b Box3) Enlargement3(o Box3) float64 {
	return b.UnionBox3(o).Volume() - b.Volume()
}

// MinDistXY2 returns the squared Euclidean distance from point (x, y) to
// the nearest point of the box's spatial (XY) projection, ignoring the
// time axis. The operation order matches Rect.MinDist2 exactly, so a box
// built from a rectangle yields bit-identical distances.
func (b Box3) MinDistXY2(x, y float64) float64 {
	dx := 0.0
	if x < b.Min[0] {
		dx = b.Min[0] - x
	} else if x > b.Max[0] {
		dx = x - b.Max[0]
	}
	dy := 0.0
	if y < b.Min[1] {
		dy = b.Min[1] - y
	} else if y > b.Max[1] {
		dy = y - b.Max[1]
	}
	return dx*dx + dy*dy
}

// CenterDistance2 returns the squared distance between the box centers.
func (b Box3) CenterDistance2(o Box3) float64 {
	cb, co := b.Center(), o.Center()
	s := 0.0
	for d := 0; d < 3; d++ {
		dd := cb[d] - co[d]
		s += dd * dd
	}
	return s
}

func (b Box3) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]x[%g,%g]",
		b.Min[0], b.Max[0], b.Min[1], b.Max[1], b.Min[2], b.Max[2])
}
