// Package geom provides the spatial and spatiotemporal geometry primitives
// used throughout the index: 2-dimensional points and rectangles, discrete
// time intervals, and 3-dimensional boxes (a rectangle extruded over an
// interval). All coordinates are float64 and live, by convention of the
// paper, in the unit square [0,1]².
//
// Time is discrete (a succession of increasing integers). A record's
// lifetime [start, end) is half-open: the record is alive at every instant
// t with start <= t < end. The paper's "Now" (still alive) is represented
// by the sentinel geom.Now.
package geom

import (
	"fmt"
	"math"
)

// Now is the deletion-time sentinel for records that are still alive.
const Now = math.MaxInt64

// Point is a location on the 2-dimensional plane.
type Point struct {
	X, Y float64
}

// Rect is a 2-dimensional, axis-parallel rectangle (an MBR). A Rect is
// valid when MinX <= MaxX and MinY <= MaxY; a degenerate rectangle with
// zero extent represents a point.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromPoint returns the degenerate rectangle covering a single point.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// EmptyRect returns the identity element for Union: any rectangle unioned
// with it is unchanged, and it intersects nothing.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle (or otherwise inverted).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Valid reports whether r is a well-formed (possibly degenerate) rectangle
// with finite coordinates.
func (r Rect) Valid() bool {
	if r.IsEmpty() {
		return false
	}
	for _, v := range [...]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Area returns the area of r, 0 for empty rectangles.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Perimeter returns half the perimeter (the R*-tree "margin") of r.
func (r Rect) Perimeter() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersect returns the intersection of r and s, which is empty when they
// do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Intersects reports whether r and s share at least one point (touching
// boundaries count as intersecting, matching R-tree search semantics).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether s lies entirely inside r.
func (r Rect) Contains(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return !r.IsEmpty() &&
		r.MinX <= p.X && p.X <= r.MaxX &&
		r.MinY <= p.Y && p.Y <= r.MaxY
}

// Enlargement returns the area increase needed for r to also cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist2 returns the squared Euclidean distance from point (x, y) to
// the nearest point of r (0 when the point lies inside or on the
// boundary). This is the MINDIST bound of branch-and-bound nearest
// neighbour search: an MBR's MinDist2 never exceeds any contained
// rectangle's, so it is an admissible priority for best-first traversal.
// Box3.MinDistXY2 must keep the exact same operation order — the
// differential oracle compares the resulting floats bit for bit.
func (r Rect) MinDist2(x, y float64) float64 {
	dx := 0.0
	if x < r.MinX {
		dx = r.MinX - x
	} else if x > r.MaxX {
		dx = x - r.MaxX
	}
	dy := 0.0
	if y < r.MinY {
		dy = r.MinY - y
	} else if y > r.MaxY {
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	return r.Intersect(s).Area()
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.4f,%.4f]x[%.4f,%.4f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Interval is a half-open discrete time interval [Start, End). End == Now
// means the interval is still open (the record is alive).
type Interval struct {
	Start, End int64
}

// ValidInterval reports whether iv is non-empty and well ordered.
func (iv Interval) ValidInterval() bool {
	return iv.Start < iv.End
}

// Length returns the number of time instants covered by iv. Open intervals
// have undefined length; callers must close them first.
func (iv Interval) Length() int64 {
	if iv.End == Now {
		return Now
	}
	return iv.End - iv.Start
}

// ContainsInstant reports whether time t falls inside [Start, End).
func (iv Interval) ContainsInstant(t int64) bool {
	return iv.Start <= t && t < iv.End
}

// Overlaps reports whether the two half-open intervals share an instant.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// IntersectInterval returns the common part of two intervals and whether it
// is non-empty.
func (iv Interval) IntersectInterval(o Interval) (Interval, bool) {
	out := Interval{Start: max64(iv.Start, o.Start), End: min64(iv.End, o.End)}
	return out, out.ValidInterval()
}

func (iv Interval) String() string {
	if iv.End == Now {
		return fmt.Sprintf("[%d,now)", iv.Start)
	}
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
