package geom

import (
	"math/rand"
	"testing"
)

func BenchmarkRectUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]Rect, 1024)
	for i := range rects {
		rects[i] = randRect(rng)
	}
	b.ResetTimer()
	acc := EmptyRect()
	for i := 0; i < b.N; i++ {
		acc = acc.Union(rects[i&1023])
	}
	_ = acc
}

func BenchmarkRectIntersects(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := make([]Rect, 1024)
	for i := range rects {
		rects[i] = randRect(rng)
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if rects[i&1023].Intersects(rects[(i+7)&1023]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkBox3Operations(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	boxes := make([]Box3, 1024)
	for i := range boxes {
		boxes[i] = randBox3(rng)
	}
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		a, c := boxes[i&1023], boxes[(i+13)&1023]
		total += a.UnionBox3(c).Volume() + a.OverlapVolume(c)
	}
	_ = total
}
