package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRect(rng *rand.Rand) Rect {
	x, y := rng.Float64(), rng.Float64()
	return Rect{MinX: x, MinY: y, MaxX: x + rng.Float64(), MaxY: y + rng.Float64()}
}

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 6}
	if got := r.Area(); got != 8 {
		t.Fatalf("Area = %g, want 8", got)
	}
	if got := r.Perimeter(); got != 6 {
		t.Fatalf("Perimeter = %g, want 6", got)
	}
	if c := r.Center(); c.X != 2 || c.Y != 4 {
		t.Fatalf("Center = %+v", c)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if EmptyRect().Valid() {
		t.Fatal("empty rect should not be valid")
	}
	if !(Rect{MinX: math.NaN(), MaxX: 1, MinY: 0, MaxY: 1}).IsEmpty() && (Rect{MinX: math.NaN(), MaxX: 1, MinY: 0, MaxY: 1}).Valid() {
		t.Fatal("NaN rect should not be valid")
	}
}

func TestEmptyRectIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := EmptyRect()
	for i := 0; i < 50; i++ {
		r := randRect(rng)
		if e.Union(r) != r || r.Union(e) != r {
			t.Fatalf("EmptyRect is not the Union identity for %v", r)
		}
		if e.Intersects(r) || r.Intersects(e) {
			t.Fatal("EmptyRect should intersect nothing")
		}
		if e.Contains(r) || r.Contains(e) {
			t.Fatal("EmptyRect containment should be false")
		}
	}
	if e.Area() != 0 || e.Perimeter() != 0 {
		t.Fatal("EmptyRect has nonzero measures")
	}
}

func TestUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRect(r), randRect(r), randRect(r)
		u := a.Union(b)
		// Commutative, covering, monotone, associative.
		if u != b.Union(a) {
			return false
		}
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if u.Area() < a.Area() || u.Area() < b.Area() {
			return false
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			return false
		}
		// Union with itself is itself.
		return a.Union(a) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRect(r), randRect(r)
		inter := a.Intersect(b)
		if a.Intersects(b) != !inter.IsEmpty() {
			return false
		}
		if !inter.IsEmpty() {
			if !a.Contains(inter) || !b.Contains(inter) {
				return false
			}
			if inter.Area() > math.Min(a.Area(), b.Area())+1e-12 {
				return false
			}
		}
		if a.OverlapArea(b) != inter.Area() {
			return false
		}
		// Enlargement is non-negative and zero iff containment.
		enl := a.Enlargement(b)
		if enl < -1e-12 {
			return false
		}
		if a.Contains(b) && enl > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	for _, c := range []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true}, // boundary counts
		{Point{1, 1}, true},
		{Point{1.0001, 0.5}, false},
		{Point{-0.0001, 0.5}, false},
	} {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if EmptyRect().ContainsPoint(Point{0, 0}) {
		t.Error("empty rect contains nothing")
	}
	if RectFromPoint(Point{0.3, 0.4}).Area() != 0 {
		t.Error("point rect should be degenerate")
	}
}

func TestIntervals(t *testing.T) {
	iv := Interval{Start: 3, End: 7}
	if !iv.ValidInterval() || iv.Length() != 4 {
		t.Fatalf("interval basics broken: %v", iv)
	}
	for tt, want := range map[int64]bool{2: false, 3: true, 6: true, 7: false} {
		if iv.ContainsInstant(tt) != want {
			t.Errorf("ContainsInstant(%d) != %v", tt, want)
		}
	}
	cases := []struct {
		a, b    Interval
		overlap bool
	}{
		{Interval{0, 5}, Interval{5, 10}, false}, // half-open: touching is disjoint
		{Interval{0, 5}, Interval{4, 10}, true},
		{Interval{0, 5}, Interval{0, 5}, true},
		{Interval{0, 5}, Interval{6, 10}, false},
		{Interval{0, Now}, Interval{1 << 40, 1<<40 + 1}, true},
	}
	for _, c := range cases {
		if c.a.Overlaps(c.b) != c.overlap || c.b.Overlaps(c.a) != c.overlap {
			t.Errorf("Overlaps(%v,%v) != %v", c.a, c.b, c.overlap)
		}
		inter, ok := c.a.IntersectInterval(c.b)
		if ok != c.overlap {
			t.Errorf("IntersectInterval(%v,%v) ok=%v, want %v", c.a, c.b, ok, c.overlap)
		}
		if ok && (!c.a.Overlaps(inter) || !c.b.Overlaps(inter)) {
			t.Errorf("intersection %v escapes operands", inter)
		}
	}
	if (Interval{Start: 5, End: 5}).ValidInterval() {
		t.Error("empty interval should be invalid")
	}
	if (Interval{Start: 3, End: Now}).String() != "[3,now)" {
		t.Error("open interval formatting")
	}
}

func TestBoxVolume(t *testing.T) {
	b := NewBox(Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}, Interval{Start: 10, End: 15})
	if b.Volume() != 30 {
		t.Fatalf("Volume = %g, want 30", b.Volume())
	}
	open := NewBox(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Interval{Start: 0, End: Now})
	if !math.IsInf(open.Volume(), 1) {
		t.Fatal("open box volume should be infinite")
	}
	if NewBox(EmptyRect(), Interval{0, 5}).Volume() != 0 {
		t.Fatal("empty-rect box volume should be 0")
	}
}

func TestBoxRelations(t *testing.T) {
	a := NewBox(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Interval{Start: 0, End: 10})
	b := NewBox(Rect{MinX: 0.5, MinY: 0.5, MaxX: 2, MaxY: 2}, Interval{Start: 5, End: 15})
	if !a.IntersectsBox(b) {
		t.Fatal("boxes should intersect")
	}
	disjointTime := NewBox(b.Rect, Interval{Start: 10, End: 15})
	if a.IntersectsBox(disjointTime) {
		t.Fatal("half-open time touching should not intersect")
	}
	u := a.UnionBox(b)
	if !u.ContainsBox(a) || !u.ContainsBox(b) {
		t.Fatal("union must contain operands")
	}
	if u.Volume() < a.Volume() || u.Volume() < b.Volume() {
		t.Fatal("union volume must dominate")
	}
}

func TestSurfaceMeasure(t *testing.T) {
	b := NewBox(Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}, Interval{Start: 0, End: 4})
	// dx*dy + dx*dt + dy*dt with dt = 4*0.5 = 2: 6 + 4 + 6 = 16.
	if got := b.SurfaceMeasure(0.5); got != 16 {
		t.Fatalf("SurfaceMeasure = %g, want 16", got)
	}
}
