package geom

import (
	"fmt"
	"math"
)

// Box is a 3-dimensional axis-parallel box: a spatial rectangle extruded
// over a discrete time interval. It is the unit that both index structures
// store — the R*-tree as a genuine 3D rectangle (with the time axis scaled)
// and the PPR-tree as a 2D rectangle plus lifetime fields.
type Box struct {
	Rect
	Interval
}

// NewBox builds a box from its spatial and temporal parts.
func NewBox(r Rect, iv Interval) Box {
	return Box{Rect: r, Interval: iv}
}

// Volume returns spatial area times temporal length. This is the quantity
// the paper's splitting algorithms minimise (the "total volume" of an
// object's representation). Boxes that are still open (End == Now) have
// infinite volume; the splitting pipeline always operates on closed boxes.
func (b Box) Volume() float64 {
	if b.Rect.IsEmpty() || !b.Interval.ValidInterval() {
		return 0
	}
	if b.End == Now {
		return math.Inf(1)
	}
	return b.Rect.Area() * float64(b.Interval.Length())
}

// UnionBox returns the smallest box covering both b and o.
func (b Box) UnionBox(o Box) Box {
	return Box{
		Rect: b.Rect.Union(o.Rect),
		Interval: Interval{
			Start: min64(b.Start, o.Start),
			End:   max64(b.End, o.End),
		},
	}
}

// IntersectsBox reports whether the two boxes share a point in space-time.
// Space uses closed semantics (touching counts); time uses the half-open
// interval semantics.
func (b Box) IntersectsBox(o Box) bool {
	return b.Rect.Intersects(o.Rect) && b.Interval.Overlaps(o.Interval)
}

// ContainsBox reports whether o lies entirely within b in space and time.
func (b Box) ContainsBox(o Box) bool {
	return b.Rect.Contains(o.Rect) &&
		b.Start <= o.Start && o.End <= b.End
}

func (b Box) String() string {
	return fmt.Sprintf("%v@%v", b.Rect, b.Interval)
}

// SurfaceMeasure returns the Pagel cost-formula surface term of the box
// when the time axis is scaled by timeScale (so that one time instant
// contributes timeScale units of length). It is the sum of side-length
// products over the three axis pairs.
func (b Box) SurfaceMeasure(timeScale float64) float64 {
	if b.Rect.IsEmpty() || !b.Interval.ValidInterval() || b.End == Now {
		return 0
	}
	dx := b.MaxX - b.MinX
	dy := b.MaxY - b.MinY
	dt := float64(b.Interval.Length()) * timeScale
	return dx*dy + dx*dt + dy*dt
}
