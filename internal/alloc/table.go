package alloc

import "fmt"

// NewCurvesFromTable wraps precomputed volume curves so the distribution
// algorithms (Greedy, LAGreedy, Optimal) can run over budgets that did
// not come from the trajectory splitters — e.g. distributing buffer-pool
// pages across shards, where curve[j] is a shard's cost served through
// j+1 pages. Each curve must be non-empty and non-increasing (the
// diminishing-returns shape every algorithm assumes).
func NewCurvesFromTable(curves [][]float64) (*Curves, error) {
	for i, c := range curves {
		if len(c) == 0 {
			return nil, fmt.Errorf("alloc: curve %d is empty", i)
		}
		for j := 1; j < len(c); j++ {
			if c[j] > c[j-1] {
				return nil, fmt.Errorf("alloc: curve %d increases at %d (%g -> %g)", i, j, c[j-1], c[j])
			}
		}
	}
	return &Curves{curves: curves}, nil
}
