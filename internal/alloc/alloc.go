// Package alloc implements the paper's split-distribution algorithms
// (§III-B): given a collection of N spatiotemporal objects and a global
// budget of K artificial splits, decide how many splits each object
// receives so that the total volume of all resulting MBRs is minimal.
//
//   - Optimal is the O(N·K·min(K, max lifetime)) dynamic program of
//     §III-B.1 (theorem 2).
//   - Greedy assigns one split at a time to the object with the largest
//     marginal gain (§III-B.2, figure 9).
//   - LAGreedy refines Greedy with a look-ahead step (§III-B.3, figure 10)
//     that rescues objects violating the monotonicity property of Claim 1
//     (those whose first split gains little but whose second gains a lot).
//
// All three operate on per-object volume curves: curve[j] is the total
// volume of object i approximated with j splits (j+1 boxes). Curves are
// produced by the single-object splitters in package split; which splitter
// to use is the caller's choice (the paper precomputes "the best splits
// ... in advance for all objects").
package alloc

import (
	"fmt"

	"stindex/internal/parallel"
	"stindex/internal/trajectory"
)

// CurveFunc computes an object's volume curve up to maxSplits. curve[j]
// must be the total volume with j splits, non-increasing in j, with
// len(curve) == maxSplits+1. split.DPCurve and split.MergeCurve qualify.
// BuildCurves invokes the function from multiple goroutines, so it must
// be safe for concurrent calls (all splitters in package split are).
type CurveFunc func(o *trajectory.Object, maxSplits int) []float64

// Curves holds precomputed volume curves for a collection of objects.
// Curve i has length Len(i) == objs[i].Len() (indices 0..n_i-1), i.e. it is
// computed out to the maximum meaningful budget n_i-1.
type Curves struct {
	objs   []*trajectory.Object
	curves [][]float64
}

// BuildCurves precomputes the volume curve of every object using fn,
// fanning the per-object work across GOMAXPROCS workers. Identical to
// BuildCurvesParallel(objs, fn, 0).
func BuildCurves(objs []*trajectory.Object, fn CurveFunc) *Curves {
	return BuildCurvesParallel(objs, fn, 0)
}

// BuildCurvesParallel precomputes volume curves with the given worker
// count (0 = GOMAXPROCS, 1 = serial on the calling goroutine). Curve
// construction is independent per object and each result lands in its
// own slot, so every worker count produces bit-identical Curves.
func BuildCurvesParallel(objs []*trajectory.Object, fn CurveFunc, workers int) *Curves {
	cs := &Curves{objs: objs, curves: make([][]float64, len(objs))}
	parallel.ForEach(len(objs), workers, func(i int) {
		cs.curves[i] = fn(objs[i], objs[i].Len()-1)
	})
	return cs
}

// NumObjects returns the number of objects in the collection. (Counted
// from the curves, so table-backed collections — NewCurvesFromTable —
// work the same; BuildCurves always produces one curve per object.)
func (c *Curves) NumObjects() int { return len(c.curves) }

// MaxSplits returns the largest meaningful budget for object i.
func (c *Curves) MaxSplits(i int) int { return len(c.curves[i]) - 1 }

// Volume returns the total volume of object i with j splits; budgets beyond
// the object's maximum are clamped.
func (c *Curves) Volume(i, j int) float64 {
	if m := c.MaxSplits(i); j > m {
		j = m
	}
	if j < 0 {
		j = 0
	}
	return c.curves[i][j]
}

// Gain returns the volume reduction of giving object i its (j+1)-th split
// when it currently has j. Zero once the object's curve is exhausted.
func (c *Curves) Gain(i, j int) float64 {
	return c.Volume(i, j) - c.Volume(i, j+1)
}

// TotalBudget returns the sum of maximum meaningful budgets — the number of
// splits beyond which no algorithm can improve anything.
func (c *Curves) TotalBudget() int {
	t := 0
	for i := range c.curves {
		t += c.MaxSplits(i)
	}
	return t
}

// Assignment is the outcome of a distribution algorithm.
type Assignment struct {
	// Splits[i] is the number of splits allocated to object i.
	Splits []int
	// Volume is the total volume of the collection under this assignment.
	Volume float64
}

// Used returns the number of splits the assignment actually consumed.
func (a Assignment) Used() int {
	t := 0
	for _, s := range a.Splits {
		t += s
	}
	return t
}

// Validate checks that an assignment is structurally consistent with the
// curves: non-negative per-object splits within each object's maximum, and
// Volume equal to the sum of per-object curve values.
func (a Assignment) Validate(c *Curves) error {
	if len(a.Splits) != c.NumObjects() {
		return fmt.Errorf("alloc: assignment covers %d objects, want %d", len(a.Splits), c.NumObjects())
	}
	total := 0.0
	for i, s := range a.Splits {
		if s < 0 {
			return fmt.Errorf("alloc: object %d has negative splits %d", i, s)
		}
		if s > c.MaxSplits(i) {
			return fmt.Errorf("alloc: object %d has %d splits, max is %d", i, s, c.MaxSplits(i))
		}
		total += c.Volume(i, s)
	}
	if diff := total - a.Volume; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("alloc: recorded volume %g differs from recomputed %g", a.Volume, total)
	}
	return nil
}

// volumeOf recomputes the total volume for a split vector.
func volumeOf(c *Curves, splits []int) float64 {
	total := 0.0
	for i, s := range splits {
		total += c.Volume(i, s)
	}
	return total
}
