package alloc

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"stindex/internal/split"
)

// TestParallelBuildCurvesMatchesSerial asserts the determinism guarantee
// of the worker pool: any worker count yields curves bit-identical to the
// one-worker (serial) run, for both curve builders. Run under -race this
// also exercises the pooled DP/merge scratch buffers concurrently.
func TestParallelBuildCurvesMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := randObjects(rng, 300, 40)
	builders := []struct {
		name string
		fn   CurveFunc
	}{
		{"merge", split.MergeCurve},
		{"dp", split.DPCurve},
	}
	for _, bld := range builders {
		want := BuildCurvesParallel(objs, bld.fn, 1)
		for _, workers := range []int{2, runtime.NumCPU(), 0} {
			got := BuildCurvesParallel(objs, bld.fn, workers)
			if !reflect.DeepEqual(want.curves, got.curves) {
				t.Fatalf("%s: workers=%d curves differ from serial", bld.name, workers)
			}
		}
	}
}

// TestParallelMaterializeMatchesSerial checks that concurrent record
// materialization reproduces the serial results exactly — same cuts, same
// boxes, same volumes, same order.
func TestParallelMaterializeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := randObjects(rng, 200, 30)
	c := BuildCurvesParallel(objs, split.MergeCurve, 1)
	a := LAGreedy(c, 300)
	want := MaterializeParallel(objs, a, split.MergeSplit, 1)
	for _, workers := range []int{2, runtime.NumCPU(), 0} {
		got := MaterializeParallel(objs, a, split.MergeSplit, workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d materialized results differ from serial", workers)
		}
	}
}

// TestOptimalEarlyExit covers the budget==0 / n==0 fast path: it must
// produce the same (validated) assignment the DP would.
func TestOptimalEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	objs := randObjects(rng, 20, 10)
	c := BuildCurves(objs, split.MergeCurve)

	a := Optimal(c, 0)
	if err := a.Validate(c); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 0 {
		t.Fatalf("budget 0 used %d splits", a.Used())
	}
	want := 0.0
	for i := 0; i < c.NumObjects(); i++ {
		want += c.Volume(i, 0)
	}
	if a.Volume != want {
		t.Fatalf("budget 0 volume %g, want %g", a.Volume, want)
	}

	empty := BuildCurves(nil, split.MergeCurve)
	ea := Optimal(empty, 5)
	if err := ea.Validate(empty); err != nil {
		t.Fatal(err)
	}
	if len(ea.Splits) != 0 || ea.Volume != 0 {
		t.Fatalf("empty collection: got %+v", ea)
	}
}
