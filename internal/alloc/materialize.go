package alloc

import (
	"stindex/internal/split"
	"stindex/internal/trajectory"
)

// Splitter turns one object and a split count into a concrete splitting.
// split.DPSplit and split.MergeSplit qualify.
type Splitter func(o *trajectory.Object, k int) split.Result

// Materialize applies an assignment to the collection: object i is split
// a.Splits[i] times using the given single-object splitter, producing the
// MBR records that the index structures ingest.
func Materialize(objs []*trajectory.Object, a Assignment, splitter Splitter) []split.Result {
	out := make([]split.Result, len(objs))
	for i, o := range objs {
		k := 0
		if i < len(a.Splits) {
			k = a.Splits[i]
		}
		out[i] = splitter(o, k)
	}
	return out
}
