package alloc

import (
	"stindex/internal/parallel"
	"stindex/internal/split"
	"stindex/internal/trajectory"
)

// Splitter turns one object and a split count into a concrete splitting.
// split.DPSplit and split.MergeSplit qualify. Materialize invokes the
// splitter from multiple goroutines, so it must be safe for concurrent
// calls (all splitters in package split are).
type Splitter func(o *trajectory.Object, k int) split.Result

// Materialize applies an assignment to the collection: object i is split
// a.Splits[i] times using the given single-object splitter, producing the
// MBR records that the index structures ingest. The per-object work is
// fanned across GOMAXPROCS workers; identical to
// MaterializeParallel(objs, a, splitter, 0).
func Materialize(objs []*trajectory.Object, a Assignment, splitter Splitter) []split.Result {
	return MaterializeParallel(objs, a, splitter, 0)
}

// MaterializeParallel is Materialize with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Result i depends only on object i and
// a.Splits[i], so every worker count produces identical output in
// identical order.
func MaterializeParallel(objs []*trajectory.Object, a Assignment, splitter Splitter, workers int) []split.Result {
	out := make([]split.Result, len(objs))
	parallel.ForEach(len(objs), workers, func(i int) {
		k := 0
		if i < len(a.Splits) {
			k = a.Splits[i]
		}
		out[i] = splitter(objs[i], k)
	})
	return out
}
