package alloc

import (
	"math/rand"
	"testing"

	"stindex/internal/split"
)

func benchCurves(b *testing.B, n int) *Curves {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return BuildCurves(randObjects(rng, n, 60), split.MergeCurve)
}

func BenchmarkBuildCurves(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 1000, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCurves(objs, split.MergeCurve)
	}
}

func BenchmarkGreedy(b *testing.B) {
	c := benchCurves(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(c, 3000)
	}
}

func BenchmarkLAGreedy(b *testing.B) {
	c := benchCurves(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LAGreedy(c, 3000)
	}
}

func BenchmarkOptimal(b *testing.B) {
	c := benchCurves(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(c, 450)
	}
}
