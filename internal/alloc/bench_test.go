package alloc

import (
	"fmt"
	"math/rand"
	"testing"

	"stindex/internal/split"
)

func benchCurves(b *testing.B, n int) *Curves {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return BuildCurves(randObjects(rng, n, 60), split.MergeCurve)
}

func BenchmarkBuildCurves(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 1000, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCurves(objs, split.MergeCurve)
	}
}

// BenchmarkBuildCurvesParallel measures curve construction across worker
// counts on the ISSUE's N >= 5000 scale; workers=1 is the serial
// baseline, workers=0 resolves to GOMAXPROCS.
func BenchmarkBuildCurvesParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjects(rng, 5000, 60)
	for _, workers := range []int{1, 2, 4, 8, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BuildCurvesParallel(objs, split.MergeCurve, workers)
			}
		})
	}
}

// BenchmarkMaterializeParallel measures record materialization across
// worker counts under a 150% budget.
func BenchmarkMaterializeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjects(rng, 5000, 60)
	a := LAGreedy(BuildCurvesParallel(objs, split.MergeCurve, 0), 7500)
	for _, workers := range []int{1, 2, 4, 8, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MaterializeParallel(objs, a, split.MergeSplit, workers)
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B) {
	c := benchCurves(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(c, 3000)
	}
}

func BenchmarkLAGreedy(b *testing.B) {
	c := benchCurves(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LAGreedy(c, 3000)
	}
}

func BenchmarkOptimal(b *testing.B) {
	c := benchCurves(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(c, 450)
	}
}
