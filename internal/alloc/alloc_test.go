package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stindex/internal/geom"
	"stindex/internal/split"
	"stindex/internal/trajectory"
)

func randObjects(rng *rand.Rand, n, maxLen int) []*trajectory.Object {
	objs := make([]*trajectory.Object, n)
	for i := range objs {
		ln := 1 + rng.Intn(maxLen)
		instants := make([]geom.Rect, ln)
		x, y := rng.Float64(), rng.Float64()
		for j := range instants {
			x += (rng.Float64() - 0.5) * 0.2
			y += (rng.Float64() - 0.5) * 0.2
			w, h := rng.Float64()*0.05, rng.Float64()*0.05
			instants[j] = geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		}
		o, err := trajectory.NewObject(int64(i), 0, instants)
		if err != nil {
			panic(err)
		}
		objs[i] = o
	}
	return objs
}

// bruteForceDistribute enumerates every split vector up to the budget.
func bruteForceDistribute(c *Curves, budget int) float64 {
	n := c.NumObjects()
	best := math.Inf(1)
	splits := make([]int, n)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == n {
			total := 0.0
			for j, s := range splits {
				total += c.Volume(j, s)
			}
			if total < best {
				best = total
			}
			return
		}
		for s := 0; s <= left && s <= c.MaxSplits(i); s++ {
			splits[i] = s
			rec(i+1, left-s)
		}
		splits[i] = 0
	}
	rec(0, budget)
	return best
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		objs := randObjects(rng, 2+rng.Intn(4), 6)
		budget := rng.Intn(8)
		c := BuildCurves(objs, split.DPCurve)
		opt := Optimal(c, budget)
		if err := opt.Validate(c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if opt.Used() > budget {
			t.Fatalf("trial %d: used %d splits of %d", trial, opt.Used(), budget)
		}
		want := bruteForceDistribute(c, budget)
		if diff := math.Abs(opt.Volume - want); diff > 1e-9*math.Max(1, want) {
			t.Fatalf("trial %d (budget %d): optimal %g, brute force %g", trial, budget, opt.Volume, want)
		}
	}
}

func TestGreedyAndLAGreedyNeverBeatOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		objs := randObjects(rng, 3+rng.Intn(10), 12)
		budget := rng.Intn(20)
		c := BuildCurves(objs, split.DPCurve)
		opt := Optimal(c, budget)
		g := Greedy(c, budget)
		la := LAGreedy(c, budget)
		for name, a := range map[string]Assignment{"greedy": g, "lagreedy": la} {
			if err := a.Validate(c); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if a.Volume < opt.Volume-1e-9*math.Max(1, opt.Volume) {
				t.Fatalf("trial %d: %s volume %g beats optimal %g — impossible",
					trial, name, a.Volume, opt.Volume)
			}
		}
		if la.Volume > g.Volume+1e-9*math.Max(1, g.Volume) {
			t.Fatalf("trial %d: LAGreedy %g worse than Greedy %g — the refinement only swaps when it helps",
				trial, la.Volume, g.Volume)
		}
	}
}

func TestLAGreedyRescuesNonMonotoneObject(t *testing.T) {
	// A tent-shaped out-and-back trajectory (figure 4's pathology): one
	// split barely helps because the apex keeps one piece full-width, but
	// two splits isolate the narrow legs. Its first-split gain is tuned to
	// be smaller than the movers' so plain Greedy starves it; LAGreedy must
	// find the two-split reassignment.
	tent := make([]geom.Rect, 30)
	for i := 0; i < 15; i++ {
		x := float64(i) * 0.06
		tent[i] = geom.Rect{MinX: x, MinY: 0, MaxX: x + 0.01, MaxY: 0.002}
	}
	for i := 15; i < 30; i++ {
		x := float64(29-i) * 0.06
		tent[i] = geom.Rect{MinX: x, MinY: 0, MaxX: x + 0.01, MaxY: 0.002}
	}
	tentObj, err := trajectory.NewObject(0, 0, tent)
	if err != nil {
		t.Fatal(err)
	}
	objs := []*trajectory.Object{tentObj}
	// Small linear movers whose single-split gains beat the tent's first
	// split but whose combined gains lose to the tent's double split.
	for id := int64(1); id <= 4; id++ {
		lin := make([]geom.Rect, 20)
		for i := range lin {
			x := float64(i) * 0.004
			lin[i] = geom.Rect{MinX: x, MinY: 0.5, MaxX: x + 0.01, MaxY: 0.51}
		}
		o, err := trajectory.NewObject(id, 0, lin)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	c := BuildCurves(objs, split.DPCurve)
	budget := 4
	g := Greedy(c, budget)
	la := LAGreedy(c, budget)
	opt := Optimal(c, budget)
	if g.Splits[0] >= 2 {
		t.Skip("greedy already found the zig-zag; workload not adversarial enough")
	}
	if la.Volume >= g.Volume {
		t.Fatalf("LAGreedy (%g) failed to improve on Greedy (%g) for the zig-zag workload", la.Volume, g.Volume)
	}
	if la.Splits[0] < 2 {
		t.Fatalf("LAGreedy gave the zig-zag %d splits, want >= 2", la.Splits[0])
	}
	if diff := la.Volume - opt.Volume; diff > 0.3*(g.Volume-opt.Volume) {
		t.Fatalf("LAGreedy %g should land near optimal %g (greedy %g)", la.Volume, opt.Volume, g.Volume)
	}
}

func TestAssignmentsExhaustBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjects(rng, 10, 10)
	c := BuildCurves(objs, split.MergeCurve)
	total := c.TotalBudget()
	for _, budget := range []int{0, 1, total / 2, total, total + 50} {
		for name, a := range map[string]Assignment{
			"optimal":  Optimal(c, budget),
			"greedy":   Greedy(c, budget),
			"lagreedy": LAGreedy(c, budget),
		} {
			want := budget
			if want > total {
				want = total
			}
			if a.Used() > want {
				t.Fatalf("%s used %d splits with budget %d (cap %d)", name, a.Used(), budget, total)
			}
			// Full-budget runs must consume everything useful.
			if budget >= total && a.Used() != total {
				t.Fatalf("%s left splits unused: %d of %d", name, a.Used(), total)
			}
			if err := a.Validate(c); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestMonotoneVolumeInBudget(t *testing.T) {
	// Property: for every algorithm, a larger budget never yields a larger
	// total volume.
	rng := rand.New(rand.NewSource(4))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		objs := randObjects(r, 4+r.Intn(6), 8)
		c := BuildCurves(objs, split.DPCurve)
		prevO, prevG, prevLA := math.Inf(1), math.Inf(1), math.Inf(1)
		for budget := 0; budget <= 10; budget += 2 {
			o := Optimal(c, budget).Volume
			g := Greedy(c, budget).Volume
			la := LAGreedy(c, budget).Volume
			if o > prevO+1e-9 || g > prevG+1e-9 || la > prevLA+1e-9 {
				return false
			}
			prevO, prevG, prevLA = o, g, la
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLAGreedyDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randObjects(rng, 12, 15)
	c := BuildCurves(objs, split.DPCurve)
	budget := 12
	base := Greedy(c, budget)
	for _, depth := range []int{1, 2, 3, 4} {
		a := LAGreedyDepth(c, budget, depth)
		if err := a.Validate(c); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if a.Used() != base.Used() {
			t.Fatalf("depth %d: used %d splits, greedy used %d", depth, a.Used(), base.Used())
		}
		if a.Volume > base.Volume+1e-9 {
			t.Fatalf("depth %d: volume %g worse than greedy %g", depth, a.Volume, base.Volume)
		}
	}
}

func TestCurvesAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := randObjects(rng, 5, 7)
	c := BuildCurves(objs, split.DPCurve)
	if c.NumObjects() != 5 {
		t.Fatalf("NumObjects = %d", c.NumObjects())
	}
	for i := 0; i < 5; i++ {
		if c.MaxSplits(i) != objs[i].Len()-1 {
			t.Fatalf("MaxSplits(%d) = %d, want %d", i, c.MaxSplits(i), objs[i].Len()-1)
		}
		// Clamping beyond the max and below zero.
		if c.Volume(i, c.MaxSplits(i)+5) != c.Volume(i, c.MaxSplits(i)) {
			t.Fatalf("Volume should clamp above max")
		}
		if c.Volume(i, -1) != c.Volume(i, 0) {
			t.Fatalf("Volume should clamp below zero")
		}
		if g := c.Gain(i, c.MaxSplits(i)); g != 0 {
			t.Fatalf("Gain beyond the curve = %g, want 0", g)
		}
	}
}
