package alloc

import "container/heap"

// minGainHeap orders entries by ascending gain (the gain of an object's
// most recently allocated split — PQ_la1 in figure 10).
type minGainHeap []gainEntry

func (h minGainHeap) Len() int            { return len(h) }
func (h minGainHeap) Less(i, j int) bool  { return h[i].gain < h[j].gain }
func (h minGainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minGainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *minGainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// LAGreedy is the look-ahead-2 greedy algorithm of §III-B.3 (figure 10).
func LAGreedy(c *Curves, budget int) Assignment {
	return LAGreedyDepth(c, budget, 2)
}

// LAGreedyDepth generalises LAGreedy to an arbitrary look-ahead depth d:
// after the plain greedy pass it repeatedly finds the d objects whose last
// splits gained the least and a distinct object that would gain more from d
// extra splits than those d last splits gained combined, and reassigns the
// splits. Depth 2 is the paper's algorithm; depth 1 degenerates to a no-op
// refinement of Greedy. The refinement loop strictly decreases total volume
// at every swap, so it terminates.
func LAGreedyDepth(c *Curves, budget, depth int) Assignment {
	if depth < 1 {
		depth = 1
	}
	splits := make([]int, c.NumObjects())
	greedyInto(c, budget, splits)

	last := make(minGainHeap, 0, c.NumObjects())  // PQ_la1: min by last-split gain
	ahead := make(maxGainHeap, 0, c.NumObjects()) // PQ_la2: max by depth-extra gain
	for i, s := range splits {
		if s > 0 {
			last = append(last, gainEntry{obj: i, splits: s, gain: c.Gain(i, s-1)})
		}
		if s+depth <= c.MaxSplits(i) {
			ahead = append(ahead, gainEntry{obj: i, splits: s, gain: c.Volume(i, s) - c.Volume(i, s+depth)})
		}
	}
	heap.Init(&last)
	heap.Init(&ahead)

	for {
		// Pop the depth objects with the cheapest last splits.
		donors := make([]gainEntry, 0, depth)
		for len(donors) < depth && last.Len() > 0 {
			e := heap.Pop(&last).(gainEntry)
			if e.splits != splits[e.obj] || e.splits == 0 {
				continue // stale
			}
			donors = append(donors, e)
		}
		if len(donors) < depth {
			pushBackLast(&last, donors)
			break
		}
		donorSet := make(map[int]bool, depth)
		donorGain := 0.0
		for _, d := range donors {
			donorSet[d.obj] = true
			donorGain += d.gain
		}

		// Pop the best distinct look-ahead candidate.
		var recv gainEntry
		found := false
		skipped := make([]gainEntry, 0, 2)
		for ahead.Len() > 0 {
			e := heap.Pop(&ahead).(gainEntry)
			if e.splits != splits[e.obj] || e.splits+depth > c.MaxSplits(e.obj) {
				continue // stale
			}
			if donorSet[e.obj] {
				skipped = append(skipped, e)
				continue
			}
			recv = e
			found = true
			break
		}
		for _, e := range skipped {
			heap.Push(&ahead, e)
		}
		if !found || recv.gain <= donorGain {
			pushBackLast(&last, donors)
			if found {
				heap.Push(&ahead, recv)
			}
			break
		}

		// Reassign: every donor loses its last split, the receiver gains depth.
		for _, d := range donors {
			splits[d.obj]--
			refresh(c, &last, &ahead, d.obj, splits[d.obj], depth)
		}
		splits[recv.obj] += depth
		refresh(c, &last, &ahead, recv.obj, splits[recv.obj], depth)
	}

	return Assignment{Splits: splits, Volume: volumeOf(c, splits)}
}

// refresh pushes up-to-date heap entries for an object whose split count
// just changed to s. Stale entries are discarded lazily on pop.
func refresh(c *Curves, last *minGainHeap, ahead *maxGainHeap, obj, s, depth int) {
	if s > 0 {
		heap.Push(last, gainEntry{obj: obj, splits: s, gain: c.Gain(obj, s-1)})
	}
	if s+depth <= c.MaxSplits(obj) {
		heap.Push(ahead, gainEntry{obj: obj, splits: s, gain: c.Volume(obj, s) - c.Volume(obj, s+depth)})
	}
}

func pushBackLast(last *minGainHeap, donors []gainEntry) {
	for _, d := range donors {
		heap.Push(last, d)
	}
}
