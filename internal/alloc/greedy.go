package alloc

import "container/heap"

// gainEntry is a max-heap entry: assigning the next split to object obj
// (which currently has splits splits) gains gain in volume. Entries are
// lazily invalidated: on pop, an entry whose recorded splits no longer
// match the live assignment is discarded.
type gainEntry struct {
	obj    int
	splits int
	gain   float64
}

type maxGainHeap []gainEntry

func (h maxGainHeap) Len() int            { return len(h) }
func (h maxGainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h maxGainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxGainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *maxGainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Greedy distributes the budget one split at a time, always to the object
// whose next split yields the largest volume reduction (paper §III-B.2,
// figure 9). O((N+K) log N) given precomputed curves. Splits that can gain
// nothing (all curves exhausted) are left unassigned.
func Greedy(c *Curves, budget int) Assignment {
	splits := make([]int, c.NumObjects())
	greedyInto(c, budget, splits)
	return Assignment{Splits: splits, Volume: volumeOf(c, splits)}
}

// greedyInto runs the greedy allocation starting from (and mutating) the
// given split vector. Used by Greedy and as phase one of LAGreedy.
func greedyInto(c *Curves, budget int, splits []int) {
	h := make(maxGainHeap, 0, c.NumObjects())
	for i := range splits {
		if splits[i] < c.MaxSplits(i) {
			h = append(h, gainEntry{obj: i, splits: splits[i], gain: c.Gain(i, splits[i])})
		}
	}
	heap.Init(&h)
	for assigned := 0; assigned < budget && h.Len() > 0; {
		e := heap.Pop(&h).(gainEntry)
		if e.splits != splits[e.obj] {
			continue // stale
		}
		splits[e.obj]++
		assigned++
		if s := splits[e.obj]; s < c.MaxSplits(e.obj) {
			heap.Push(&h, gainEntry{obj: e.obj, splits: s, gain: c.Gain(e.obj, s)})
		}
	}
}
