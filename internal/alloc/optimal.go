package alloc

// Optimal distributes K splits over the collection so that the total volume
// is exactly minimal (paper §III-B.1, theorem 2). It runs the dynamic
// program
//
//	TV_l[i] = min_{0<=j<=l} { TV_{l-j}[i-1] + V_j[i] }
//
// in O(N·K·min(K, maxLifetime)) time and O(N·K) space for the
// reconstruction table (the two rolling value rows are O(K)).
// Impractical for large budgets — that is the point of the greedy
// algorithms — but it is the gold standard the experiments compare
// against.
func Optimal(c *Curves, budget int) Assignment {
	n := c.NumObjects()
	if budget < 0 {
		budget = 0
	}
	if t := c.TotalBudget(); budget > t {
		budget = t
	}
	if budget == 0 || n == 0 {
		// Nothing to distribute: skip the DP entirely instead of
		// allocating value rows and a choice table it would never use.
		splits := make([]int, n)
		return Assignment{Splits: splits, Volume: volumeOf(c, splits)}
	}
	// prev[l] = minimal volume of the first i-1 objects using l splits.
	prev := make([]float64, budget+1)
	cur := make([]float64, budget+1)
	// choice[i][l] = splits given to object i in the optimum for (i, l).
	choice := make([][]int32, n)

	for l := 0; l <= budget; l++ {
		prev[l] = 0
	}
	for i := 0; i < n; i++ {
		choice[i] = make([]int32, budget+1)
		maxJ := c.MaxSplits(i)
		for l := 0; l <= budget; l++ {
			best := prev[l] + c.Volume(i, 0)
			bestJ := int32(0)
			hi := l
			if hi > maxJ {
				hi = maxJ
			}
			for j := 1; j <= hi; j++ {
				if v := prev[l-j] + c.Volume(i, j); v < best {
					best = v
					bestJ = int32(j)
				}
			}
			cur[l] = best
			choice[i][l] = bestJ
		}
		prev, cur = cur, prev
	}

	splits := make([]int, n)
	l := budget
	for i := n - 1; i >= 0; i-- {
		j := int(choice[i][l])
		splits[i] = j
		l -= j
	}
	return Assignment{Splits: splits, Volume: volumeOf(c, splits)}
}
