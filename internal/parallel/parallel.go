// Package parallel provides the small worker-pool primitives shared by
// the pipeline's hot stages (curve construction, record materialization,
// STR bulk loading). The contract everywhere is the same: work item i
// writes only to slot i of a pre-sized output, so any worker count —
// including 1 — produces bit-identical results; parallelism changes wall
// clock, never output.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob against a work-item count: p <= 0
// selects GOMAXPROCS (the "use the machine" default), and the result is
// clamped to n so a tiny input never spawns idle goroutines. Pass n < 0
// when the item count is unknown.
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ForEach invokes fn(i) for every i in [0, n) across the given number of
// workers (resolved via Workers). Items are handed out through an atomic
// counter, so uneven per-item costs — long-lived objects next to
// single-instant ones — balance dynamically. fn must be safe for
// concurrent invocation and must write only to data owned by item i.
// With one worker (or one item) everything runs on the calling
// goroutine, making the serial path literally the same code.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker state (a
// buffer pool, a decode cache, a scratch arena): fn additionally receives
// the worker index w in [0, resolved workers), and every invocation with
// the same w runs on the same goroutine. The item-claiming discipline is
// unchanged — an atomic counter hands out items dynamically, and item i
// must write only to data owned by item i, so results are bit-identical
// for every worker count.
func ForEachWorker(n, workers int, fn func(w, i int)) {
	_ = ForEachWorkerCtx(context.Background(), n, workers, fn)
}

// ForEachWorkerCtx is ForEachWorker with cooperative cancellation: once
// ctx is done, no further items are claimed and the context's error is
// returned after the in-flight items finish. Cancellation granularity is
// one item — fn itself is never interrupted — so completed items have
// still written only to their own slots and partial results remain
// well-defined. A nil error means every item ran.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(w, i int)) error {
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
