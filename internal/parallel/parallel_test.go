package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		p, n, want int
	}{
		{0, -1, max},        // default resolves to GOMAXPROCS
		{-3, -1, max},       // negative too
		{0, 2, min(2, max)}, // clamped to item count
		{4, 2, 2},
		{4, 100, 4},
		{1, 100, 1},
		{7, 0, 1}, // no items still resolves to a valid count
	}
	for _, c := range cases {
		if got := Workers(c.p, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 0} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachDeterministicSlotWrites(t *testing.T) {
	const n = 5000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, runtime.NumCPU(), 0} {
		got := make([]int, n)
		ForEach(n, workers, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachWorkerCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 100000
		var visited atomic.Int64
		const stopAt = 10
		err := ForEachWorkerCtx(ctx, n, workers, func(_, i int) {
			if visited.Add(1) == stopAt {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight items finish, but no new ones are claimed after the
		// cancellation: far fewer than n items must have run.
		if got := visited.Load(); got >= n {
			t.Fatalf("workers=%d: %d items ran despite cancellation", workers, got)
		}
		cancel()
	}

	// A live context returns nil and visits everything.
	var visited atomic.Int64
	if err := ForEachWorkerCtx(context.Background(), 500, 3, func(_, i int) { visited.Add(1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if visited.Load() != 500 {
		t.Fatalf("visited %d of 500", visited.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn invoked for empty range")
	}
}
