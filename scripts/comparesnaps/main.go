// Command comparesnaps fires the same deterministic query mix at two
// snapshots of a running stserve and fails unless every answer's id set
// is identical. scripts/smoke_stserve.sh uses it to prove a sharded
// snapshot's scatter-gather merge is indistinguishable from the flat
// container it was partitioned from (ids may be discovered in a
// different order; both sides are compared as sorted sets).
//
//	go run ./scripts/comparesnaps http://127.0.0.1:18431 default sharded 120
//
// With -record / -replay the second snapshot is a file instead of a
// server: -record saves one snapshot's answers, -replay fails unless the
// same queries answer identically later — across a kill -9 and restart,
// this is the crash-recovery oracle for the ingest smoke test:
//
//	go run ./scripts/comparesnaps -record answers.json http://... live 80
//	go run ./scripts/comparesnaps -replay answers.json http://... live 80
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
)

func main() {
	record := flag.String("record", "", "query one snapshot and save its answers to this file")
	replay := flag.String("replay", "", "query one snapshot and compare against answers saved with -record")
	flag.Parse()
	if *record != "" || *replay != "" {
		if *record != "" && *replay != "" {
			die("-record and -replay are mutually exclusive")
		}
		if flag.NArg() != 3 {
			die("usage: comparesnaps -record|-replay <file> <base-url> <snapshot> <queries>")
		}
		base, snap := flag.Arg(0), flag.Arg(1)
		n, err := strconv.Atoi(flag.Arg(2))
		if err != nil || n <= 0 {
			die("bad query count %q", flag.Arg(2))
		}
		if *record != "" {
			recordAnswers(*record, base, snap, n)
		} else {
			replayAnswers(*replay, base, snap, n)
		}
		return
	}

	if flag.NArg() != 4 {
		die("usage: comparesnaps <base-url> <snapshot-a> <snapshot-b> <queries>")
	}
	base, snapA, snapB := flag.Arg(0), flag.Arg(1), flag.Arg(2)
	n, err := strconv.Atoi(flag.Arg(3))
	if err != nil || n <= 0 {
		die("bad query count %q", flag.Arg(3))
	}

	matched := 0
	for i := 0; i < n; i++ {
		params := queryParams(i)
		a, err := ask(base, snapA, params)
		if err != nil {
			die("query %d against %s: %v", i, snapA, err)
		}
		b, err := ask(base, snapB, params)
		if err != nil {
			die("query %d against %s: %v", i, snapB, err)
		}
		if !equal(a, b) {
			die("query %d (%s) differs: %s answered %d ids, %s answered %d ids",
				i, params, snapA, len(a), snapB, len(b))
		}
		matched += len(a)
	}
	fmt.Printf("comparesnaps ok: %d queries, %d ids identical between %q and %q\n",
		n, matched, snapA, snapB)
}

// recordAnswers queries the snapshot and saves the sorted id set of
// every answer, one JSON array per query.
func recordAnswers(path, base, snap string, n int) {
	answers := make([][]int64, n)
	total := 0
	for i := 0; i < n; i++ {
		ids, err := ask(base, snap, queryParams(i))
		if err != nil {
			die("query %d against %s: %v", i, snap, err)
		}
		if ids == nil {
			ids = []int64{}
		}
		answers[i] = ids
		total += len(ids)
	}
	data, err := json.Marshal(answers)
	if err != nil {
		die("encoding answers: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		die("writing %s: %v", path, err)
	}
	fmt.Printf("comparesnaps recorded: %d queries, %d ids from %q to %s\n", n, total, snap, path)
}

// replayAnswers queries the snapshot and fails unless every answer
// matches the recorded file exactly.
func replayAnswers(path, base, snap string, n int) {
	data, err := os.ReadFile(path)
	if err != nil {
		die("reading %s: %v", path, err)
	}
	var want [][]int64
	if err := json.Unmarshal(data, &want); err != nil {
		die("decoding %s: %v", path, err)
	}
	if len(want) != n {
		die("%s holds %d recorded answers, want %d", path, len(want), n)
	}
	matched := 0
	for i := 0; i < n; i++ {
		params := queryParams(i)
		got, err := ask(base, snap, params)
		if err != nil {
			die("query %d against %s: %v", i, snap, err)
		}
		if !equal(got, want[i]) {
			die("query %d (%s) diverged after restart: got %d ids, recorded %d", i, params, len(got), len(want[i]))
		}
		matched += len(got)
	}
	fmt.Printf("comparesnaps replay ok: %d queries, %d ids identical to %s\n", n, matched, path)
}

// queryParams derives the i-th deterministic query: a sliding rect over
// the unit square, cycling through all three query kinds — window
// (alternating snapshot t= and range from/to timestamps), kNN at the
// rect center, and trajectory over the rect — so the sharded
// scatter-gather merge and crash recovery are proven on every answer
// path, not just window search.
func queryParams(i int) string {
	x := float64((i*37)%83) / 100.0 // 0.00 .. 0.82
	y := float64((i*53)%79) / 100.0
	w := 0.05 + float64(i%4)*0.05 // 0.05 .. 0.20
	rect := fmt.Sprintf("rect=%.2f,%.2f,%.2f,%.2f", x, y, min(x+w, 1), min(y+w, 1))
	t := (i * 101) % 500
	switch i % 7 {
	case 2:
		k := 1 + (i*13)%20
		return fmt.Sprintf("kind=knn&x=%.2f&y=%.2f&t=%d&k=%d", min(x+w/2, 1), min(y+w/2, 1), t, k)
	case 5:
		return fmt.Sprintf("kind=trajectory&%s&from=%d&to=%d", rect, t, t+10+(i%40))
	}
	if i%3 == 0 {
		return fmt.Sprintf("%s&from=%d&to=%d", rect, t, t+10+(i%40))
	}
	return fmt.Sprintf("%s&t=%d", rect, t)
}

func ask(base, snapshot, params string) ([]int64, error) {
	url := fmt.Sprintf("%s/query?snapshot=%s&%s", base, snapshot, params)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var body struct {
		Count int     `json:"count"`
		IDs   []int64 `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("%s: %v", url, err)
	}
	if body.Count != len(body.IDs) {
		return nil, fmt.Errorf("%s: count %d but %d ids", url, body.Count, len(body.IDs))
	}
	sort.Slice(body.IDs, func(a, b int) bool { return body.IDs[a] < body.IDs[b] })
	return body.IDs, nil
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "comparesnaps: "+format+"\n", args...)
	os.Exit(1)
}
