#!/usr/bin/env bash
# End-to-end smoke test for stserve: build the CLIs, generate and save a
# container, serve it, fire >= 1000 queries from >= 8 concurrent clients,
# check /metrics and hot-swap, and shut down gracefully with SIGTERM.
# With SMOKE_SHARDED=1 (the default) it also builds a 3-shard snapshot
# from the same dataset, serves it next to the flat container, proves the
# scatter-gather answers are identical, hot-swaps the manifest and checks
# the per-shard metrics invariant. With SMOKE_INGEST=1 (the default) it
# then runs the live-ingestion crash drill: stream observations into a
# WAL-backed server, freeze mid-stream, record the live answers, kill -9,
# restart over the same journal and require the replayed answers to be
# identical. Exits non-zero on any failure. Used by CI; runnable locally:
#
#   ./scripts/smoke_stserve.sh
set -euo pipefail

CLIENTS=${CLIENTS:-8}
QUERIES_PER_CLIENT=${QUERIES_PER_CLIENT:-125}   # 8 x 125 = 1000
SMOKE_SHARDED=${SMOKE_SHARDED:-1}
SMOKE_INGEST=${SMOKE_INGEST:-1}
PORT=${PORT:-18431}
ADDR="127.0.0.1:${PORT}"

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/stgen ./cmd/stsplit ./cmd/stquery ./cmd/stserve

echo "== generating container"
"$workdir/stgen" -n 800 -horizon 500 -seed 3 -o "$workdir/objs.jsonl"
"$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -o "$workdir/recs.jsonl"
"$workdir/stquery" -i "$workdir/recs.jsonl" -index ppr -save "$workdir/idx.sti" \
  -set snapshot-mixed -queries 10 >/dev/null
cp "$workdir/idx.sti" "$workdir/idx2.sti"

echo "== starting stserve on $ADDR"
"$workdir/stserve" -listen "$ADDR" -load "default=$workdir/idx.sti" -workers 4 \
  2>"$workdir/serve.log" &
serve_pid=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never came up"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done

echo "== firing $CLIENTS x $QUERIES_PER_CLIENT concurrent queries"
client() {
  local id=$1 fails=0
  for i in $(seq 1 "$QUERIES_PER_CLIENT"); do
    t=$(( (id * 131 + i * 7) % 400 ))
    if ! curl -sf "http://$ADDR/query?rect=0.3,0.3,0.7,0.7&t=$t" >/dev/null; then
      fails=$((fails + 1))
    fi
  done
  echo "$fails" > "$workdir/fails.$id"
}
client_pids=()
for c in $(seq 1 "$CLIENTS"); do client "$c" & client_pids+=("$!"); done
wait "${client_pids[@]}"

total_fails=0
for c in $(seq 1 "$CLIENTS"); do
  total_fails=$((total_fails + $(cat "$workdir/fails.$c")))
done
if [ "$total_fails" -ne 0 ]; then
  echo "FAIL: $total_fails query errors"; cat "$workdir/serve.log"; exit 1
fi
echo "   zero errors"

echo "== kNN and trajectory query kinds"
knn=$(curl -sf "http://$ADDR/query?kind=knn&x=0.5&y=0.5&t=100&k=5")
grep -q '"neighbors":\[{"id":' <<<"$knn" \
  || { echo "FAIL: knn answer missing neighbors: $knn"; exit 1; }
traj=$(curl -sf "http://$ADDR/query?kind=trajectory&rect=0.3,0.3,0.7,0.7&from=50&to=300")
grep -q '"trajectories":\[{"id":' <<<"$traj" \
  || { echo "FAIL: trajectory answer missing hits: $traj"; exit 1; }
echo "   knn + trajectory ok"

echo "== hot-swapping the snapshot"
curl -sf -X POST "http://$ADDR/snapshots/load" \
  -d "{\"name\":\"default\",\"path\":\"$workdir/idx2.sti\"}" >/dev/null
curl -sf "http://$ADDR/query?rect=0.3,0.3,0.7,0.7&t=100" >/dev/null

if [ "$SMOKE_SHARDED" = "1" ]; then
  echo "== building sharded snapshot (3 temporal shards from the same dataset)"
  "$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -shards 3 -o "$workdir/snap.stm"
  curl -sf -X POST "http://$ADDR/snapshots/load" \
    -d "{\"name\":\"sharded\",\"path\":\"$workdir/snap.stm\"}" >/dev/null

  echo "== comparing scatter-gather answers to the flat container"
  go run ./scripts/comparesnaps "http://$ADDR" default sharded 120

  echo "== hot-swapping the sharded snapshot (spatial partitioner)"
  "$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -shards 3 \
    -partitioner spatial -o "$workdir/snap2.stm"
  curl -sf -X POST "http://$ADDR/snapshots/load" \
    -d "{\"name\":\"sharded\",\"path\":\"$workdir/snap2.stm\"}" >/dev/null
  go run ./scripts/comparesnaps "http://$ADDR" default sharded 40
fi

echo "== scraping /metrics"
metrics=$(curl -sf "http://$ADDR/metrics")
echo "$metrics" | head -c 400; echo
want=$((CLIENTS * QUERIES_PER_CLIENT))
check=$(go run ./scripts/checkmetrics.go "$want" <<<"$metrics")
echo "$check"
if [ "$SMOKE_SHARDED" = "1" ]; then
  if grep -q "sharded-snapshots=0" <<<"$check"; then
    echo "FAIL: no sharded snapshot in metrics"; exit 1
  fi
fi

# Malformed kNN parameters must map to 400, not 500. This runs after the
# metrics scrape: the rejected query counts as a failure there, and
# checkmetrics insists the load-test traffic itself had none.
echo "== malformed kNN is rejected with 400"
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/query?kind=knn&x=0.5&y=0.5&t=100&k=0")
[ "$status" = "400" ] || { echo "FAIL: k=0 answered $status, want 400"; exit 1; }

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$serve_pid"
for i in $(seq 1 50); do
  kill -0 "$serve_pid" 2>/dev/null || break
  [ "$i" = 50 ] && { echo "server did not drain"; exit 1; }
  sleep 0.1
done
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
grep -q "bye" "$workdir/serve.log" || { echo "no graceful exit line"; cat "$workdir/serve.log"; exit 1; }

if [ "$SMOKE_INGEST" = "1" ]; then
  # Live-ingestion crash drill. The feed is deterministic: 6 objects
  # drifting through the unit square, one JSON observation per line (the
  # concatenated-JSON batch format /ingest accepts).
  gen_feed() { # gen_feed <first-t> <last-t-exclusive>
    awk -v s="$1" -v e="$2" 'BEGIN {
      for (t = s; t < e; t++)
        for (id = 1; id <= 6; id++) {
          x = 0.05 + 0.12 * (id - 1) + 0.001 * (t % 97)
          y = 0.10 + 0.08 * ((id * 7 + t) % 9)
          printf "{\"id\":%d,\"t\":%d,\"minx\":%.3f,\"miny\":%.3f,\"maxx\":%.3f,\"maxy\":%.3f}\n", \
            id, t, x, y, x + 0.05, y + 0.05
        }
    }'
  }
  wait_up() { # wait_up <logfile>
    for i in $(seq 1 50); do
      curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
      [ "$i" = 50 ] && { echo "ingest server never came up"; cat "$1"; return 1; }
      sleep 0.1
    done
  }

  echo "== starting WAL-backed ingest server"
  "$workdir/stserve" -listen "$ADDR" -workers 4 \
    -ingest live -ingest-dir "$workdir/journal" 2>"$workdir/ingest.log" &
  serve_pid=$!
  wait_up "$workdir/ingest.log"

  echo "== streaming observations (chunk 1), freezing mid-stream"
  gen_feed 1 200 >"$workdir/feed1.jsonl"     # 199 instants x 6 = 1194 records
  curl -sf -X POST --data-binary "@$workdir/feed1.jsonl" "http://$ADDR/ingest" >/dev/null
  curl -sf -X POST "http://$ADDR/ingest/freeze" | grep -q '"froze":true' \
    || { echo "mid-stream freeze did not happen"; cat "$workdir/ingest.log"; exit 1; }

  echo "== streaming observations (chunk 2: the WAL tail beyond the freeze)"
  gen_feed 200 400 >"$workdir/feed2.jsonl"   # 200 instants x 6 = 1200 records
  curl -sf -X POST --data-binary "@$workdir/feed2.jsonl" "http://$ADDR/ingest" >/dev/null
  curl -sf -X POST -d '{"t":400}' "http://$ADDR/ingest/finish" >/dev/null

  echo "== recording live answers"
  go run ./scripts/comparesnaps -record "$workdir/answers.json" "http://$ADDR" live 80

  echo "== checking ingest metrics (2395 accepted = 1194 + 1200 + finish-all)"
  curl -sf "http://$ADDR/metrics" | go run ./scripts/checkmetrics.go \
    -ingest-accepted 2395 -ingest-freezes 1 80

  echo "== kill -9, restart over the same journal"
  kill -9 "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  "$workdir/stserve" -listen "$ADDR" -workers 4 \
    -ingest live -ingest-dir "$workdir/journal" 2>"$workdir/ingest2.log" &
  serve_pid=$!
  wait_up "$workdir/ingest2.log"

  echo "== replaying recorded answers against the recovered pipeline"
  go run ./scripts/comparesnaps -replay "$workdir/answers.json" "http://$ADDR" live 80

  # Chunk 2 and the finish-all were never frozen, so recovery must have
  # replayed exactly those 1201 records from the journal tail.
  curl -sf "http://$ADDR/metrics" | go run ./scripts/checkmetrics.go \
    -ingest-accepted 0 -ingest-replayed 1201 80

  echo "== graceful ingest shutdown (SIGTERM: final freeze + drain)"
  kill -TERM "$serve_pid"
  for i in $(seq 1 50); do
    kill -0 "$serve_pid" 2>/dev/null || break
    [ "$i" = 50 ] && { echo "ingest server did not drain"; exit 1; }
    sleep 0.1
  done
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=""
  grep -q "bye" "$workdir/ingest2.log" || { echo "no graceful exit line"; cat "$workdir/ingest2.log"; exit 1; }
fi
echo "SMOKE OK"
