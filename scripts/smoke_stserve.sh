#!/usr/bin/env bash
# End-to-end smoke test for stserve: build the CLIs, generate and save a
# container, serve it, fire >= 1000 queries from >= 8 concurrent clients,
# check /metrics and hot-swap, and shut down gracefully with SIGTERM.
# With SMOKE_SHARDED=1 (the default) it also builds a 3-shard snapshot
# from the same dataset, serves it next to the flat container, proves the
# scatter-gather answers are identical, hot-swaps the manifest and checks
# the per-shard metrics invariant. Exits non-zero on any failure. Used by
# CI; runnable locally:
#
#   ./scripts/smoke_stserve.sh
set -euo pipefail

CLIENTS=${CLIENTS:-8}
QUERIES_PER_CLIENT=${QUERIES_PER_CLIENT:-125}   # 8 x 125 = 1000
SMOKE_SHARDED=${SMOKE_SHARDED:-1}
PORT=${PORT:-18431}
ADDR="127.0.0.1:${PORT}"

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/stgen ./cmd/stsplit ./cmd/stquery ./cmd/stserve

echo "== generating container"
"$workdir/stgen" -n 800 -horizon 500 -seed 3 -o "$workdir/objs.jsonl"
"$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -o "$workdir/recs.jsonl"
"$workdir/stquery" -i "$workdir/recs.jsonl" -index ppr -save "$workdir/idx.sti" \
  -set snapshot-mixed -queries 10 >/dev/null
cp "$workdir/idx.sti" "$workdir/idx2.sti"

echo "== starting stserve on $ADDR"
"$workdir/stserve" -listen "$ADDR" -load "default=$workdir/idx.sti" -workers 4 \
  2>"$workdir/serve.log" &
serve_pid=$!

for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never came up"; cat "$workdir/serve.log"; exit 1; }
  sleep 0.1
done

echo "== firing $CLIENTS x $QUERIES_PER_CLIENT concurrent queries"
client() {
  local id=$1 fails=0
  for i in $(seq 1 "$QUERIES_PER_CLIENT"); do
    t=$(( (id * 131 + i * 7) % 400 ))
    if ! curl -sf "http://$ADDR/query?rect=0.3,0.3,0.7,0.7&t=$t" >/dev/null; then
      fails=$((fails + 1))
    fi
  done
  echo "$fails" > "$workdir/fails.$id"
}
client_pids=()
for c in $(seq 1 "$CLIENTS"); do client "$c" & client_pids+=("$!"); done
wait "${client_pids[@]}"

total_fails=0
for c in $(seq 1 "$CLIENTS"); do
  total_fails=$((total_fails + $(cat "$workdir/fails.$c")))
done
if [ "$total_fails" -ne 0 ]; then
  echo "FAIL: $total_fails query errors"; cat "$workdir/serve.log"; exit 1
fi
echo "   zero errors"

echo "== hot-swapping the snapshot"
curl -sf -X POST "http://$ADDR/snapshots/load" \
  -d "{\"name\":\"default\",\"path\":\"$workdir/idx2.sti\"}" >/dev/null
curl -sf "http://$ADDR/query?rect=0.3,0.3,0.7,0.7&t=100" >/dev/null

if [ "$SMOKE_SHARDED" = "1" ]; then
  echo "== building sharded snapshot (3 temporal shards from the same dataset)"
  "$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -shards 3 -o "$workdir/snap.stm"
  curl -sf -X POST "http://$ADDR/snapshots/load" \
    -d "{\"name\":\"sharded\",\"path\":\"$workdir/snap.stm\"}" >/dev/null

  echo "== comparing scatter-gather answers to the flat container"
  go run ./scripts/comparesnaps "http://$ADDR" default sharded 120

  echo "== hot-swapping the sharded snapshot (spatial partitioner)"
  "$workdir/stsplit" -i "$workdir/objs.jsonl" -budget 1200 -shards 3 \
    -partitioner spatial -o "$workdir/snap2.stm"
  curl -sf -X POST "http://$ADDR/snapshots/load" \
    -d "{\"name\":\"sharded\",\"path\":\"$workdir/snap2.stm\"}" >/dev/null
  go run ./scripts/comparesnaps "http://$ADDR" default sharded 40
fi

echo "== scraping /metrics"
metrics=$(curl -sf "http://$ADDR/metrics")
echo "$metrics" | head -c 400; echo
want=$((CLIENTS * QUERIES_PER_CLIENT))
check=$(go run ./scripts/checkmetrics.go "$want" <<<"$metrics")
echo "$check"
if [ "$SMOKE_SHARDED" = "1" ]; then
  if grep -q "sharded-snapshots=0" <<<"$check"; then
    echo "FAIL: no sharded snapshot in metrics"; exit 1
  fi
fi

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$serve_pid"
for i in $(seq 1 50); do
  kill -0 "$serve_pid" 2>/dev/null || break
  [ "$i" = 50 ] && { echo "server did not drain"; exit 1; }
  sleep 0.1
done
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
grep -q "bye" "$workdir/serve.log" || { echo "no graceful exit line"; cat "$workdir/serve.log"; exit 1; }
echo "SMOKE OK"
