// Command checkmetrics validates an stserve /metrics scrape piped on
// stdin: at least N completed queries (the positional argument), zero
// failures, non-zero QPS and latency percentiles, and live per-snapshot
// statistics. With -ingest-accepted it additionally requires a live
// ingestion block and proves the pipeline's durability invariants on it
// (accepted == wal_records_written, fsyncs behind every ack, freezes
// consistent, nothing latched). Used by scripts/smoke_stserve.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"stindex/internal/service"
)

func main() {
	ingestAccepted := flag.Int64("ingest-accepted", -1, "require an ingest block with at least this many accepted records (-1 = no ingest checks)")
	ingestReplayed := flag.Int64("ingest-replayed", -1, "require at least this many records replayed from the journal at startup (-1 = don't check)")
	ingestFreezes := flag.Int64("ingest-freezes", -1, "require at least this many published freezes (-1 = don't check)")
	flag.Parse()
	if flag.NArg() != 1 {
		die("usage: checkmetrics [flags] <min-completed> < metrics.json")
	}
	min, err := strconv.ParseInt(flag.Arg(0), 10, 64)
	if err != nil {
		die("bad min-completed %q: %v", flag.Arg(0), err)
	}
	var m service.Metrics
	if err := json.NewDecoder(os.Stdin).Decode(&m); err != nil {
		die("decoding metrics: %v", err)
	}
	if m.Completed < min {
		die("completed = %d, want >= %d", m.Completed, min)
	}
	if m.Failed != 0 || m.Rejected != 0 {
		die("failed = %d rejected = %d, want 0", m.Failed, m.Rejected)
	}
	if m.QPS <= 0 {
		die("qps = %v, want > 0", m.QPS)
	}
	if m.P50US <= 0 || m.P95US <= 0 || m.P99US <= 0 {
		die("degenerate percentiles: p50=%d p95=%d p99=%d", m.P50US, m.P95US, m.P99US)
	}
	if len(m.Snapshots) == 0 {
		die("no snapshots in metrics")
	}
	shardedSnaps := 0
	for _, s := range m.Snapshots {
		if s.Queries > 0 && s.Reads+s.Hits == 0 {
			die("snapshot %q served %d queries with no buffer traffic", s.Name, s.Queries)
		}
		// Sharded snapshots: every query is either dispatched to or
		// pruned at every shard, so per shard dispatched + pruned must
		// equal the scatter-gather query count exactly (the scrape
		// happens at rest in the smoke test, so no in-flight slack).
		if len(s.Shards) > 0 {
			shardedSnaps++
			if s.Queries > 0 && s.ShardedQueries == 0 {
				die("sharded snapshot %q served %d queries but counted none at the fan-out", s.Name, s.Queries)
			}
			for _, sh := range s.Shards {
				if sh.Queries+sh.Pruned != s.ShardedQueries {
					die("snapshot %q shard %d: dispatched %d + pruned %d != %d sharded queries",
						s.Name, sh.Shard, sh.Queries, sh.Pruned, s.ShardedQueries)
				}
			}
		}
	}
	ingestLine := ""
	if *ingestAccepted >= 0 {
		if m.Ingest == nil {
			die("no ingest block in metrics")
		}
		checkIngest(m.Ingest, *ingestAccepted, *ingestReplayed, *ingestFreezes)
		ingestLine = fmt.Sprintf(" ingest-accepted=%d ingest-replayed=%d freezes=%d",
			m.Ingest.Accepted, m.Ingest.Replayed, m.Ingest.Freezes)
	}
	fmt.Printf("metrics ok: completed=%d qps=%.0f p50=%dµs p99=%dµs sharded-snapshots=%d%s\n",
		m.Completed, m.QPS, m.P50US, m.P99US, shardedSnaps, ingestLine)
}

// checkIngest proves the ingestion pipeline's externally visible
// durability invariants on a quiescent scrape.
func checkIngest(in *service.IngestStats, minAccepted, minReplayed, minFreezes int64) {
	if in.Latched != "" {
		die("ingest pipeline latched: %s", in.Latched)
	}
	if in.Accepted < minAccepted {
		die("ingest accepted = %d, want >= %d", in.Accepted, minAccepted)
	}
	// The durability contract made countable: a record is Accepted only
	// after its journal frame is covered by a successful fsync, so at
	// rest the two counters must agree exactly.
	if in.Accepted != in.WALRecords {
		die("accepted = %d but wal_records_written = %d — an ack without a durable frame", in.Accepted, in.WALRecords)
	}
	if in.Accepted > 0 && in.Fsyncs == 0 {
		die("%d records accepted with zero fsyncs", in.Accepted)
	}
	if in.Rejected != 0 || in.Invalid != 0 {
		die("ingest rejected = %d invalid = %d, want 0 in the smoke feed", in.Rejected, in.Invalid)
	}
	if minReplayed >= 0 && in.Replayed < minReplayed {
		die("ingest replayed = %d, want >= %d", in.Replayed, minReplayed)
	}
	if minFreezes >= 0 && in.Freezes < minFreezes {
		die("ingest freezes = %d, want >= %d", in.Freezes, minFreezes)
	}
	if in.FreezeErrors != 0 {
		die("ingest freeze errors = %d", in.FreezeErrors)
	}
	if in.Freezes > 0 && in.LastFreezeSeq == 0 {
		die("%d freezes published but last_freeze_seq = 0", in.Freezes)
	}
	// Seq is the total durable history; it can never lag what this
	// process replayed plus accepted.
	if in.Seq < uint64(in.Replayed)+uint64(in.Accepted) {
		die("seq = %d < replayed %d + accepted %d", in.Seq, in.Replayed, in.Accepted)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkmetrics: "+format+"\n", args...)
	os.Exit(1)
}
