// Command checkmetrics validates an stserve /metrics scrape piped on
// stdin: at least N completed queries (argv[1]), zero failures, non-zero
// QPS and latency percentiles, and live per-snapshot statistics. Used by
// scripts/smoke_stserve.sh.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"stindex/internal/service"
)

func main() {
	if len(os.Args) != 2 {
		die("usage: checkmetrics <min-completed> < metrics.json")
	}
	min, err := strconv.ParseInt(os.Args[1], 10, 64)
	if err != nil {
		die("bad min-completed %q: %v", os.Args[1], err)
	}
	var m service.Metrics
	if err := json.NewDecoder(os.Stdin).Decode(&m); err != nil {
		die("decoding metrics: %v", err)
	}
	if m.Completed < min {
		die("completed = %d, want >= %d", m.Completed, min)
	}
	if m.Failed != 0 || m.Rejected != 0 {
		die("failed = %d rejected = %d, want 0", m.Failed, m.Rejected)
	}
	if m.QPS <= 0 {
		die("qps = %v, want > 0", m.QPS)
	}
	if m.P50US <= 0 || m.P95US <= 0 || m.P99US <= 0 {
		die("degenerate percentiles: p50=%d p95=%d p99=%d", m.P50US, m.P95US, m.P99US)
	}
	if len(m.Snapshots) == 0 {
		die("no snapshots in metrics")
	}
	shardedSnaps := 0
	for _, s := range m.Snapshots {
		if s.Queries > 0 && s.Reads+s.Hits == 0 {
			die("snapshot %q served %d queries with no buffer traffic", s.Name, s.Queries)
		}
		// Sharded snapshots: every query is either dispatched to or
		// pruned at every shard, so per shard dispatched + pruned must
		// equal the scatter-gather query count exactly (the scrape
		// happens at rest in the smoke test, so no in-flight slack).
		if len(s.Shards) > 0 {
			shardedSnaps++
			if s.Queries > 0 && s.ShardedQueries == 0 {
				die("sharded snapshot %q served %d queries but counted none at the fan-out", s.Name, s.Queries)
			}
			for _, sh := range s.Shards {
				if sh.Queries+sh.Pruned != s.ShardedQueries {
					die("snapshot %q shard %d: dispatched %d + pruned %d != %d sharded queries",
						s.Name, sh.Shard, sh.Queries, sh.Pruned, s.ShardedQueries)
				}
			}
		}
	}
	fmt.Printf("metrics ok: completed=%d qps=%.0f p50=%dµs p99=%dµs sharded-snapshots=%d\n",
		m.Completed, m.QPS, m.P50US, m.P99US, shardedSnaps)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkmetrics: "+format+"\n", args...)
	os.Exit(1)
}
