package stindex

import (
	"fmt"

	"stindex/internal/geom"
	"stindex/internal/pprtree"
	"stindex/internal/stream"
)

// StreamOptions configures a StreamIndex.
type StreamOptions struct {
	// Lambda is the per-record storage penalty of the online split rule:
	// the current lifetime piece is cut when extending it would inflate
	// the representation volume by more than the new observation's own
	// volume plus Lambda. Zero cuts eagerly; large values approach the
	// unsplit representation. CalibrateLambda finds a value that meets a
	// records-per-object target.
	Lambda float64
	// PPR configures the underlying partially persistent R-tree.
	PPR PPROptions
}

// StreamIndex is the on-line version of the index — the future work the
// paper's conclusion calls out. Observations arrive in time order; split
// decisions are made without seeing the future; historical snapshot and
// range queries are answerable at any moment, including for still-live
// objects.
type StreamIndex struct {
	ix     *stream.Indexer
	closer fileHandle // see PPRIndex.closer
}

// NewStreamIndex creates an empty streaming index whose history begins at
// startTime.
func NewStreamIndex(opts StreamOptions, startTime int64) (*StreamIndex, error) {
	ix, err := stream.New(stream.Options{
		Lambda: opts.Lambda,
		Tree: pprtree.Options{
			MaxEntries:  opts.PPR.MaxEntries,
			PVersion:    opts.PPR.PVersion,
			PSvo:        opts.PPR.PSvo,
			PSvu:        opts.PPR.PSvu,
			PageSize:    opts.PPR.PageSize,
			BufferPages: opts.PPR.BufferPages,
			Backend:     opts.PPR.Backend.internal(),
		},
	}, startTime)
	if err != nil {
		return nil, err
	}
	return &StreamIndex{ix: ix}, nil
}

// readOnlyErr reports ErrReadOnly when the snapshot was opened from a
// container (its store rejects writes), nil otherwise.
func (s *StreamIndex) readOnlyErr(op string) error {
	if readOnlyStore(s.ix.Tree().Store()) {
		return fmt.Errorf("stindex: %s on opened stream snapshot: %w", op, ErrReadOnly)
	}
	return nil
}

// Observe reports that object objID occupies r at time t. Observations
// must be globally non-decreasing in time and consecutive per object; use
// Finish when an object disappears (it may reappear later). On a snapshot
// opened read-only from a container, Observe fails with ErrReadOnly.
func (s *StreamIndex) Observe(objID, t int64, r Rect) error {
	if err := s.readOnlyErr("Observe"); err != nil {
		return err
	}
	return s.ix.Observe(objID, t, r.internal())
}

// Finish ends object objID's current lifetime at t (its last observation
// was at t-1). Fails with ErrReadOnly on an opened snapshot.
func (s *StreamIndex) Finish(objID, t int64) error {
	if err := s.readOnlyErr("Finish"); err != nil {
		return err
	}
	return s.ix.Finish(objID, t)
}

// FinishAll ends every live object at t. Fails with ErrReadOnly on an
// opened snapshot.
func (s *StreamIndex) FinishAll(t int64) error {
	if err := s.readOnlyErr("FinishAll"); err != nil {
		return err
	}
	return s.ix.FinishAll(t)
}

// Snapshot returns the objects whose piece rectangles intersect r at
// instant t — past or present.
func (s *StreamIndex) Snapshot(r Rect, t int64) ([]int64, error) {
	return s.ix.Snapshot(r.internal(), t)
}

// Range returns the objects whose piece rectangles intersect r during iv.
func (s *StreamIndex) Range(r Rect, iv Interval) ([]int64, error) {
	return s.ix.Range(r.internal(), iv.internal())
}

// Nearest implements Index: best-first search over the stream's
// partially persistent tree, piece refs mapped to owners through the
// streaming ref table.
func (s *StreamIndex) Nearest(px, py float64, t int64, k int) ([]Neighbor, error) {
	if err := ValidateKNN(px, py, k); err != nil {
		return nil, err
	}
	col := knnCollector{k: k}
	var cbErr error
	err := s.ix.Tree().NearestSearch(px, py, t, func(d2 float64, ref uint64) bool {
		id, ok := s.ix.OwnerRef(ref)
		if !ok {
			cbErr = fmt.Errorf("stindex: stream piece ref %d has no owner (corrupt index image?)", ref)
			return false
		}
		return col.add(d2, id)
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return col.nb, nil
}

// Trajectory implements Index: each reported ref is one online lifetime
// piece, so counting refs per owner is exactly the multi-entry answer
// over the pieces the stream has cut so far.
func (s *StreamIndex) Trajectory(r Rect, iv Interval) ([]TrajectoryHit, error) {
	counts := make(map[int64]int)
	var cbErr error
	err := s.ix.Tree().IntervalSearch(r.internal(), iv.internal(), func(_ geom.Rect, ref uint64) bool {
		id, ok := s.ix.OwnerRef(ref)
		if !ok {
			cbErr = fmt.Errorf("stindex: stream piece ref %d has no owner (corrupt index image?)", ref)
			return false
		}
		counts[id]++
		return true
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return trajectoryHits(counts), nil
}

// ResetBuffer empties the LRU pool and zeroes the I/O counters.
func (s *StreamIndex) ResetBuffer() { s.ix.Tree().Buffer().Reset() }

// IOStats returns buffer traffic since the last reset.
func (s *StreamIndex) IOStats() IOStats {
	st := s.ix.Tree().Buffer().Stats()
	return IOStats{Reads: st.Reads, Writes: st.Writes, Hits: st.Hits}
}

// Pages returns the index's live page count.
func (s *StreamIndex) Pages() int { return s.ix.Tree().Store().NumPages() }

// Bytes returns the index's disk footprint.
func (s *StreamIndex) Bytes() int64 { return s.ix.Tree().Store().Bytes() }

// Records returns the number of lifetime pieces created so far.
func (s *StreamIndex) Records() int { return s.ix.Records() }

// Cuts returns how many artificial splits the online rule performed.
func (s *StreamIndex) Cuts() int { return s.ix.Cuts() }

// Live returns the number of currently open objects.
func (s *StreamIndex) Live() int { return s.ix.Live() }

// LiveLastT returns the last observed instant of objID's open piece and
// whether the object is currently live.
func (s *StreamIndex) LiveLastT(objID int64) (int64, bool) { return s.ix.LiveLastT(objID) }

// LiveObjects returns the ids of all currently open objects in ascending
// order.
func (s *StreamIndex) LiveObjects() []int64 { return s.ix.LiveObjects() }

// Lambda returns the split penalty the stream index runs with (for a
// decoded snapshot, the value recorded in its image).
func (s *StreamIndex) Lambda() float64 { return s.ix.Lambda() }

// Now returns the index's current clock: the largest instant any applied
// event carried. Recovery uses it to restart the global time discipline
// where the journal left off.
func (s *StreamIndex) Now() int64 { return s.ix.Tree().Now() }

// Kind implements the Index naming convention.
func (s *StreamIndex) Kind() string { return "stream-ppr" }

// Tree exposes the underlying partially persistent R-tree for advanced
// inspection (validation walks, statistics).
func (s *StreamIndex) Tree() *pprtree.Tree { return s.ix.Tree() }

// PieceRecords reconstructs the lifetime pieces the online split rule has
// created so far as facade records (one per piece, ObjectID = owning
// object, open pieces ending at Now). This is the record set the stream
// index actually answers queries over — its online cuts differ from any
// offline split — so a brute-force scan of PieceRecords is the reference
// answer for differential checking.
func (s *StreamIndex) PieceRecords() ([]Record, error) {
	pieces, err := s.ix.Pieces()
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(pieces))
	for i, p := range pieces {
		id, ok := s.ix.OwnerRef(p.Ref)
		if !ok {
			return nil, fmt.Errorf("stindex: stream piece ref %d has no owner (corrupt index image?)", p.Ref)
		}
		out[i] = Record{
			Rect:     fromGeomRect(p.Rect),
			Interval: Interval{Start: p.Interval.Start, End: p.Interval.End},
			ObjectID: id,
		}
	}
	return out, nil
}

// Close releases the container file of a lazily opened snapshot; see
// (*PPRIndex).Close. Idempotent, safe for concurrent callers. A snapshot
// opened from disk is read-only: Observe, Finish and FinishAll fail with
// ErrReadOnly.
func (s *StreamIndex) Close() error { return s.closer.close() }

// StreamIndex satisfies Index, so the measurement helpers and wrappers
// (MeasureWorkload, Synchronized) work on it too.
var _ Index = (*StreamIndex)(nil)

// CalibrateLambda finds, by bisection on a sample of the objects, a
// Lambda for which the online split rule produces approximately
// targetRecordsPerObject lifetime pieces per object. The sample is
// replayed through the real online rule, so the calibration accounts for
// the data's actual motion patterns.
func CalibrateLambda(sample []*Object, targetRecordsPerObject float64) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("stindex: empty calibration sample")
	}
	if targetRecordsPerObject < 1 {
		targetRecordsPerObject = 1
	}
	recordsAt := func(lambda float64) (float64, error) {
		total := 0
		for _, o := range sample {
			total += onlinePieceCount(o, lambda)
		}
		return float64(total) / float64(len(sample)), nil
	}
	lo, hi := 0.0, 1.0
	// Grow hi until it is loose enough to stop all cutting.
	for i := 0; i < 60; i++ {
		r, err := recordsAt(hi)
		if err != nil {
			return 0, err
		}
		if r <= targetRecordsPerObject {
			break
		}
		hi *= 4
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		r, err := recordsAt(mid)
		if err != nil {
			return 0, err
		}
		if r > targetRecordsPerObject {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// onlinePieceCount simulates the online split rule on one object without
// touching any index.
func onlinePieceCount(o *Object, lambda float64) int {
	pieces := 1
	var cur geom.Rect
	length := 0
	lt := o.Lifetime()
	for t := lt.Start; t < lt.End; t++ {
		r, _ := o.At(t)
		ir := r.internal()
		if length == 0 {
			cur, length = ir, 1
			continue
		}
		union := cur.Union(ir)
		extendCost := union.Area()*float64(length+1) - cur.Area()*float64(length)
		if extendCost > ir.Area()+lambda {
			pieces++
			cur, length = ir, 1
			continue
		}
		cur, length = union, length+1
	}
	return pieces
}
