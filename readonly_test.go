package stindex

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// buildSmallPPRContainer saves a small built PPR index and returns its
// container path.
func buildSmallPPRContainer(t *testing.T) string {
	t.Helper()
	objs, err := GenerateRandom(RandomDatasetConfig{N: 150, Horizon: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 225})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ppr.sti")
	if err := SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCloseIdempotentAndConcurrent asserts the satellite contract: Close
// on an opened index is idempotent — and safe even when many goroutines
// race to close the same handle (run under -race).
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	path := buildSmallPPRContainer(t)
	x, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := CloseIndex(x); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := CloseIndex(x); err != nil {
		t.Fatalf("close after close: %v", err)
	}

	// Built, in-memory indexes: CloseIndex is a no-op, repeatedly.
	objs, err := GenerateRandom(RandomDatasetConfig{N: 50, Horizon: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 75})
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := CloseIndex(built); err != nil {
			t.Fatalf("close built #%d: %v", i, err)
		}
	}
}

// TestReadOnlyErrOnOpenedIndex asserts every mutating facade method on a
// lazily opened index fails with ErrReadOnly, detectable via errors.Is.
func TestReadOnlyErrOnOpenedIndex(t *testing.T) {
	path := buildSmallPPRContainer(t)
	x, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseIndex(x)
	ppr := x.(*PPRIndex)
	appendErr := ppr.Append([]Record{{
		Rect:     Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2},
		Interval: Interval{Start: 10000, End: 10010},
		ObjectID: 99999,
	}})
	if !errors.Is(appendErr, ErrReadOnly) {
		t.Fatalf("Append on opened index: err = %v, want ErrReadOnly", appendErr)
	}
	// Queries stay fully usable.
	if _, err := ppr.Snapshot(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 100); err != nil {
		t.Fatalf("query after rejected append: %v", err)
	}

	// Stream snapshots: Observe / Finish / FinishAll all report ErrReadOnly.
	st, err := NewStreamIndex(StreamOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tt := int64(0); tt < 20; tt++ {
		if err := st.Observe(7, tt, Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	spath := filepath.Join(t.TempDir(), "stream.sti")
	if err := SaveIndex(spath, st); err != nil {
		t.Fatal(err)
	}
	sx, err := OpenIndex(spath)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseIndex(sx)
	snap := sx.(*StreamIndex)
	if err := snap.Observe(7, 20, Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Observe on opened snapshot: err = %v, want ErrReadOnly", err)
	}
	if err := snap.Finish(7, 21); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Finish on opened snapshot: err = %v, want ErrReadOnly", err)
	}
	if err := snap.FinishAll(21); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("FinishAll on opened snapshot: err = %v, want ErrReadOnly", err)
	}
}
