// Command ststream runs the on-line indexer over a time-ordered
// observation feed (JSON lines from `stgen -events`), printing streaming
// statistics and, optionally, evaluating a query workload on the finished
// history.
//
// Usage:
//
//	stgen -family random -n 2000 -events -o feed.jsonl
//	ststream -i feed.jsonl -lambda 0.01
//	ststream -i feed.jsonl -lambda 0.01 -set snapshot-mixed -queries 500
//	ststream -i feed.jsonl -lambda 0.01 -wal /tmp/journal
//
// With -wal DIR the feed runs through the same durable ingestion
// pipeline stserve's -ingest mode uses (internal/ingest): every batch is
// journaled and fsynced before it is applied, the final state is frozen
// into a compressed container in DIR, and a rerun over the same
// directory recovers it instead of starting over. Without -wal the feed
// is applied in memory only (the historical behaviour).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	stx "stindex"

	"stindex/internal/ingest"
	"stindex/internal/stio"
)

func main() {
	var (
		in      = flag.String("i", "", "input observation feed (default stdin)")
		lambda  = flag.Float64("lambda", 0.01, "online split rule's per-record penalty")
		target  = flag.Float64("target", 0, "calibrate lambda for this many records per object (overrides -lambda)")
		set     = flag.String("set", "", "evaluate this standard query set after the stream ends")
		queries = flag.Int("queries", 1000, "number of queries from the set")
		seed    = flag.Int64("seed", 1, "query generation seed")
		horizon = flag.Int64("horizon", 1000, "time horizon for query placement")
		every   = flag.Int64("progress", 0, "print progress every N instants (0 = off)")
		wal     = flag.String("wal", "", "journal directory: ingest durably through the WAL pipeline instead of in memory")
		finish  = flag.Bool("finish", true, "finish all live objects after the last observation")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	obs, err := stio.ReadObservations(r)
	if err != nil {
		fatal(err)
	}
	if len(obs) == 0 {
		fatal(fmt.Errorf("empty observation feed"))
	}

	if *target > 0 {
		sample, err := objectsFromObservations(obs, 200)
		if err != nil {
			fatal(err)
		}
		l, err := stx.CalibrateLambda(sample, *target)
		if err != nil {
			fatal(err)
		}
		*lambda = l
		fmt.Fprintf(os.Stderr, "calibrated lambda=%.6f for ~%.1f records/object\n", l, *target)
	}

	last := obs[len(obs)-1].T
	var ix *stx.StreamIndex
	if *wal != "" {
		ix = runThroughWAL(*wal, *lambda, obs, last, *finish, *every)
	} else {
		var err error
		ix, err = stx.NewStreamIndex(stx.StreamOptions{Lambda: *lambda}, obs[0].T)
		if err != nil {
			fatal(err)
		}
		lastProgress := obs[0].T
		for i, o := range obs {
			if o.Final {
				err = ix.Finish(o.ObjectID, o.T)
			} else {
				err = ix.Observe(o.ObjectID, o.T, stx.Rect{
					MinX: o.Rect.MinX, MinY: o.Rect.MinY, MaxX: o.Rect.MaxX, MaxY: o.Rect.MaxY,
				})
			}
			if err != nil {
				fatal(fmt.Errorf("observation %d: %w", i+1, err))
			}
			if *every > 0 && o.T >= lastProgress+*every {
				lastProgress = o.T
				fmt.Fprintf(os.Stderr, "t=%d: %d live objects, %d records (%d cuts), %d pages\n",
					o.T, ix.Live(), ix.Records(), ix.Cuts(), ix.Pages())
			}
		}
		if *finish {
			if err := ix.FinishAll(last + 1); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "stream done at t=%d: %d records (%d online cuts), %d pages (%d KiB)\n",
		last, ix.Records(), ix.Cuts(), ix.Pages(), ix.Bytes()/1024)

	if *set == "" {
		return
	}
	qs, err := stx.GenerateQueries(stx.QuerySet(*set), *horizon, *seed)
	if err != nil {
		fatal(err)
	}
	if *queries < len(qs) {
		qs = qs[:*queries]
	}
	totalIO, totalResults := int64(0), 0
	for _, q := range qs {
		ix.ResetBuffer()
		var ids []int64
		if q.IsSnapshot() {
			ids, err = ix.Snapshot(q.Rect, q.Interval.Start)
		} else {
			ids, err = ix.Range(q.Rect, q.Interval)
		}
		if err != nil {
			fatal(err)
		}
		totalIO += ix.IOStats().IO()
		totalResults += len(ids)
	}
	fmt.Printf("set=%s queries=%d avg-io=%.2f avg-results=%.1f\n",
		*set, len(qs), float64(totalIO)/float64(len(qs)), float64(totalResults)/float64(len(qs)))
}

// runThroughWAL feeds the observations through the durable ingestion
// pipeline: per-instant batches, each journaled and fsynced before it is
// acknowledged, with a final freeze on close so a rerun recovers from
// the container instead of replaying the whole journal.
func runThroughWAL(dir string, lambda float64, obs []stio.Observation, last int64, finish bool, every int64) *stx.StreamIndex {
	in, err := ingest.Open(ingest.Config{Dir: dir, Lambda: lambda, Codec: stx.CodecCompressed})
	if err != nil {
		fatal(err)
	}
	if st := in.Stats(); st.Seq > 0 {
		fmt.Fprintf(os.Stderr, "recovered journal at seq %d (%d replayed, %d torn bytes dropped)\n",
			st.Seq, st.Replayed, st.TornBytesRecovered)
	}
	lastProgress := obs[0].T
	start := 0
	for i := 1; i <= len(obs); i++ {
		if i < len(obs) && obs[i].T == obs[start].T {
			continue
		}
		if _, err := in.SubmitObservations(obs[start:i]); err != nil {
			fatal(fmt.Errorf("observation %d: %w", start+1, err))
		}
		if every > 0 && obs[start].T >= lastProgress+every {
			lastProgress = obs[start].T
			st := in.Stats()
			fmt.Fprintf(os.Stderr, "t=%d: %d live objects, %d records, seq %d, %d wal KiB\n",
				obs[start].T, st.LiveObjects, st.Records, st.Seq, st.WALBytes/1024)
		}
		start = i
	}
	if finish {
		if _, err := in.Submit([]ingest.Record{{Kind: ingest.RecFinishAll, T: last + 1}}); err != nil {
			fatal(err)
		}
	}
	st := in.Stats()
	if err := in.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "journal: %d records accepted in %d fsyncs (p99 %dµs), %d KiB, frozen at seq %d\n",
		st.Accepted, st.Fsyncs, st.FsyncP99US, st.WALBytes/1024, in.Seq())
	return in.Index()
}

// objectsFromObservations reconstructs up to maxObjects complete objects
// from the feed (those with a final event), for lambda calibration.
func objectsFromObservations(obs []stio.Observation, maxObjects int) ([]*stx.Object, error) {
	type track struct {
		start int64
		rects []stx.Rect
		done  bool
	}
	tracks := make(map[int64]*track)
	order := make([]int64, 0, maxObjects)
	for _, o := range obs {
		tr := tracks[o.ObjectID]
		if o.Final {
			if tr != nil {
				tr.done = true
			}
			continue
		}
		if tr == nil {
			if len(tracks) >= maxObjects {
				continue
			}
			tr = &track{start: o.T}
			tracks[o.ObjectID] = tr
			order = append(order, o.ObjectID)
		}
		tr.rects = append(tr.rects, stx.Rect{
			MinX: o.Rect.MinX, MinY: o.Rect.MinY, MaxX: o.Rect.MaxX, MaxY: o.Rect.MaxY,
		})
	}
	var out []*stx.Object
	for _, id := range order {
		tr := tracks[id]
		if !tr.done || len(tr.rects) == 0 {
			continue
		}
		o, err := stx.NewObject(id, tr.start, tr.rects)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no complete objects in the feed to calibrate on")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ststream:", err)
	os.Exit(1)
}
