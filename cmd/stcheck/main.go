// Command stcheck runs the correctness harness: the differential query
// oracle (every index kind vs a brute-force scan, both page-store
// backends, serial and parallel), the structural invariant walkers, and
// the fault-injection matrix. It exits non-zero on the first
// discrepancy, printing the workload seed — and fault schedule, when one
// was armed — needed to replay it.
//
// Usage:
//
//	stcheck                                  # 3 seeds, all kinds, both backends
//	stcheck -seed 42 -seeds 1                # replay one failing seed
//	stcheck -kinds ppr,stream -n 1000        # focus on two kinds, bigger data
//	stcheck -nofaults                        # oracle only, skip the fault matrix
//	stcheck -schedules read@1,rand:7:0.1     # custom fault schedules
//	stcheck -inspect snap.stic               # print a container's shape and sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	stx "stindex"

	"stindex/internal/check"
)

func main() {
	var (
		n           = flag.Int("n", 400, "objects per workload")
		queries     = flag.Int("queries", 200, "queries per workload")
		horizon     = flag.Int64("horizon", 1000, "evolution length in time instants")
		seed        = flag.Int64("seed", 1, "first workload seed")
		seeds       = flag.Int("seeds", 3, "number of consecutive seeds to run")
		kinds       = flag.String("kinds", "", "comma-separated index kinds (default: ppr,rstar,hr,hybrid,stream)")
		backend     = flag.String("backend", "both", "page-store backend to check: mem | disk | both")
		parallelism = flag.String("parallelism", "1,4", "comma-separated worker counts for the parallel passes")
		nofaults    = flag.Bool("nofaults", false, "skip the fault-injection matrix")
		schedules   = flag.String("schedules", "", "comma-separated fault schedules overriding the defaults (see DESIGN.md for the grammar); ';' separates rules within one schedule")
		inspect     = flag.String("inspect", "", "print the given container's kind, codec, page counts and sizes, then exit")
		verbose     = flag.Bool("v", false, "log every pass to stderr")
	)
	flag.Parse()

	if *inspect != "" {
		info, err := stx.InspectContainer(*inspect)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %s container v%d, codec %s, %d extent(s), meta %d bytes\n",
			*inspect, info.Kind, info.Version, info.Codec, info.Extents, info.MetaBytes)
		fmt.Printf("  pages: %d live / %d allocated x %d bytes\n",
			info.Pages, info.PagesAlloc, info.PageSize)
		fmt.Printf("  bytes: %d logical (raw pages), %d stored (encoded extents), %d file",
			info.LogicalBytes, info.StoredBytes, info.FileBytes)
		if info.StoredBytes > 0 && info.LogicalBytes > info.StoredBytes {
			fmt.Printf(" — %.1fx compression", float64(info.LogicalBytes)/float64(info.StoredBytes))
		}
		fmt.Println()
		return
	}

	cfg := check.DiffConfig{
		Objects: *n,
		Horizon: *horizon,
		Queries: *queries,
	}
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			cfg.Kinds = append(cfg.Kinds, strings.TrimSpace(k))
		}
	}
	switch *backend {
	case "mem":
		cfg.Backends = []stx.Backend{stx.BackendMemory}
	case "disk":
		cfg.Backends = []stx.Backend{stx.BackendDisk}
	case "both", "":
	default:
		fatal(fmt.Errorf("unknown backend %q (want mem, disk or both)", *backend))
	}
	for _, p := range strings.Split(*parallelism, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad parallelism %q", p))
		}
		cfg.Parallelism = append(cfg.Parallelism, w)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "stcheck: "+format+"\n", args...)
		}
	}
	if *schedules != "" {
		var scheds []string
		for _, s := range strings.Split(*schedules, ",") {
			s = strings.ReplaceAll(strings.TrimSpace(s), ";", ",")
			if _, err := check.ParseSchedule(s); err != nil {
				fatal(err)
			}
			scheds = append(scheds, s)
		}
		check.DefaultReadSchedules = scheds
	}

	for i := 0; i < *seeds; i++ {
		cfg.Seed = *seed + int64(i)
		drep, err := check.RunDiff(cfg)
		if err != nil {
			fatal(fmt.Errorf("differential check FAILED — replay with -seed %d -seeds 1: %w", cfg.Seed, err))
		}
		fmt.Printf("stcheck: seed %d: %d oracle passes, %d comparisons ok\n",
			cfg.Seed, drep.Passes, drep.Compared)
		if *nofaults {
			continue
		}
		frep, err := check.RunFaultMatrix(cfg)
		if err != nil {
			fatal(fmt.Errorf("fault matrix FAILED — replay with -seed %d -seeds 1: %w", cfg.Seed, err))
		}
		fmt.Printf("stcheck: seed %d: %d fault schedules ok, %d faults injected and contained\n",
			cfg.Seed, frep.Schedules, frep.Injected)
	}
	if !*nofaults {
		if err := check.VerifyBufferFaults(); err != nil {
			fatal(err)
		}
		fmt.Println("stcheck: buffer fault semantics ok")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stcheck:", err)
	os.Exit(1)
}
