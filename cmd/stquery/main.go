// Command stquery builds an index over a record file and runs query
// workloads against it with the paper's cold-buffer discipline, printing
// average disk accesses.
//
// Usage:
//
//	stquery -i records.jsonl -index ppr   -set snapshot-mixed
//	stquery -i records.jsonl -index rstar -set range-small -queries 500
//	stquery -i records.jsonl -index rstar-packed -parallelism 8 -set range-small
//	stquery -i records.jsonl -index hybrid -set range-medium
//	stquery -i records.jsonl -index ppr -rect 0.4,0.4,0.6,0.6 -t 500
//	stquery -i records.jsonl -index ppr -knn 0.5,0.5 -k 10 -t 500   # k nearest at an instant
//	stquery -i records.jsonl -index hr -traj -rect 0.4,0.4,0.6,0.6 -from 100 -to 400
//	stquery -i records.jsonl -index hr -save idx.sti        # persist the built index
//	stquery -load idx.sti -set snapshot-mixed               # reopen lazily (kind autodetected)
//	stquery -i records.jsonl -index ppr -backend disk ...   # build on the disk backend
//	stquery -i records.jsonl -index ppr -serve :8080        # build, then serve it over HTTP
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	stx "stindex"

	"stindex/internal/service"
	"stindex/internal/stio"
)

func main() {
	var (
		in       = flag.String("i", "", "input records (JSON lines from stsplit; default stdin)")
		kind     = flag.String("index", "ppr", "index structure: ppr | rstar | rstar-packed | hybrid | hr")
		par      = flag.Int("parallelism", 0, "worker count for bulk loading (rstar-packed) and workload measurement: 0 = all cores, 1 = serial; tree and averages are identical either way")
		save     = flag.String("save", "", "write the built index container to this file (any kind)")
		load     = flag.String("load", "", "open a saved index container lazily instead of building from records (kind autodetected; -index is ignored)")
		backend  = flag.String("backend", "", "page-store backend for building: mem | disk (default: $STINDEX_BACKEND, then mem)")
		describe = flag.Bool("describe", false, "print the index's physical shape and exit")
		set      = flag.String("set", "", "standard query set (snapshot-tiny|snapshot-small|snapshot-mixed|snapshot-large|range-small|range-medium)")
		queries  = flag.Int("queries", 1000, "number of queries from the set")
		seed     = flag.Int64("seed", 1, "query generation seed")
		horizon  = flag.Int64("horizon", 1000, "time horizon for query placement")
		serve    = flag.String("serve", "", "serve the built or loaded index over HTTP on this address (snapshot name \"default\"; same endpoints as stserve)")
		rect     = flag.String("rect", "", "single query rectangle: minx,miny,maxx,maxy")
		at       = flag.Int64("t", -1, "single snapshot query time")
		from     = flag.Int64("from", -1, "single range query start")
		to       = flag.Int64("to", -1, "single range query end (exclusive)")
		knn      = flag.String("knn", "", "k-nearest-neighbor query point: x,y (requires -t; use -k for the count)")
		kk       = flag.Int("k", 10, "neighbor count for -knn")
		traj     = flag.Bool("traj", false, "trajectory query: objects whose path crossed -rect during -from/-to, with per-object piece counts")
	)
	flag.Parse()

	var idx stx.Index
	var err error
	if *load != "" {
		idx, err = stx.OpenIndex(*load)
		if err != nil {
			fatal(err)
		}
		defer stx.CloseIndex(idx)
	} else {
		records, rerr := readRecords(*in)
		if rerr != nil {
			fatal(rerr)
		}
		idx, err = build(*kind, records, *par, stx.Backend(*backend))
		if err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		if err := stx.SaveIndex(*save, idx); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved index container to %s\n", *save)
	}
	fmt.Fprintf(os.Stderr, "built %s index: %d records, %d pages (%d KiB)\n",
		idx.Kind(), idx.Records(), idx.Pages(), idx.Bytes()/1024)

	if *describe {
		d, err := stx.Describe(idx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
		return
	}

	if *serve != "" {
		if err := serveIndex(*serve, idx); err != nil {
			fatal(err)
		}
		return
	}

	if *knn != "" {
		x, y, err := parsePoint(*knn)
		if err != nil {
			fatal(err)
		}
		if *at < 0 {
			fatal(fmt.Errorf("-knn needs -t (the query instant)"))
		}
		idx.ResetBuffer()
		nbs, err := idx.Nearest(x, y, *at, *kk)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("results=%d io=%d\n", len(nbs), idx.IOStats().IO())
		for _, nb := range nbs {
			fmt.Printf("%d %g\n", nb.ObjectID, nb.Dist2)
		}
		return
	}

	if *traj {
		if *rect == "" {
			fatal(fmt.Errorf("-traj needs -rect (and -from/-to or -t)"))
		}
		q, err := parseSingle(*rect, *at, *from, *to)
		if err != nil {
			fatal(err)
		}
		idx.ResetBuffer()
		hits, err := idx.Trajectory(q.Rect, q.Interval)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("results=%d io=%d\n", len(hits), idx.IOStats().IO())
		for _, th := range hits {
			fmt.Printf("%d %d\n", th.ObjectID, th.Pieces)
		}
		return
	}

	if *rect != "" {
		q, err := parseSingle(*rect, *at, *from, *to)
		if err != nil {
			fatal(err)
		}
		idx.ResetBuffer()
		ids, err := stx.RunQuery(idx, q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("results=%d io=%d\n", len(ids), idx.IOStats().IO())
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	if *set == "" {
		fatal(fmt.Errorf("provide -set for a workload or -rect for a single query"))
	}
	qs, err := stx.GenerateQueries(stx.QuerySet(*set), *horizon, *seed)
	if err != nil {
		fatal(err)
	}
	if *queries < len(qs) {
		qs = qs[:*queries]
	}
	res, err := stx.MeasureWorkloadParallel(idx, qs, *par)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("set=%s queries=%d avg-io=%.2f avg-results=%.1f\n", *set, res.Queries, res.AvgIO, res.AvgResult)
}

// serveIndex publishes idx as snapshot "default" and serves the stserve
// HTTP API on addr until SIGINT/SIGTERM, then drains gracefully. The
// service takes ownership of the index (closing is idempotent, so the
// caller's deferred CloseIndex stays safe).
func serveIndex(addr string, idx stx.Index) error {
	svc := service.New(service.Config{})
	if _, err := svc.Registry().Publish("default", idx); err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: service.NewHandler(svc)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving %s index on %s (snapshot \"default\"); SIGINT drains\n", idx.Kind(), addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigCh:
	case err := <-errCh:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "stquery: shutdown: %v\n", err)
	}
	return svc.Close()
}

func build(kind string, records []stx.Record, parallelism int, backend stx.Backend) (stx.Index, error) {
	switch kind {
	case "ppr":
		return stx.BuildPPR(records, stx.PPROptions{Backend: backend})
	case "rstar":
		return stx.BuildRStar(records, stx.RStarOptions{ShuffleSeed: 42, Backend: backend})
	case "rstar-packed":
		return stx.BuildRStarPacked(records, stx.RStarOptions{Parallelism: parallelism, Backend: backend})
	case "hybrid":
		return stx.BuildHybrid(records, stx.HybridOptions{
			PPR:   stx.PPROptions{Backend: backend},
			RStar: stx.RStarOptions{ShuffleSeed: 42, Backend: backend},
		})
	case "hr":
		return stx.BuildHR(records, stx.HROptions{Backend: backend})
	default:
		return nil, fmt.Errorf("unknown index %q (want ppr, rstar, rstar-packed, hybrid or hr)", kind)
	}
}

func parsePoint(s string) (x, y float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-knn wants x,y")
	}
	if x, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, fmt.Errorf("knn x: %w", err)
	}
	if y, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, fmt.Errorf("knn y: %w", err)
	}
	return x, y, nil
}

func parseSingle(rect string, at, from, to int64) (stx.Query, error) {
	parts := strings.Split(rect, ",")
	if len(parts) != 4 {
		return stx.Query{}, fmt.Errorf("rect wants minx,miny,maxx,maxy")
	}
	var c [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return stx.Query{}, fmt.Errorf("rect coordinate %d: %w", i, err)
		}
		c[i] = v
	}
	r := stx.Rect{MinX: c[0], MinY: c[1], MaxX: c[2], MaxY: c[3]}
	switch {
	case at >= 0:
		return stx.Query{Rect: r, Interval: stx.Interval{Start: at, End: at + 1}}, nil
	case from >= 0 && to > from:
		return stx.Query{Rect: r, Interval: stx.Interval{Start: from, End: to}}, nil
	default:
		return stx.Query{}, fmt.Errorf("provide -t for a snapshot or -from/-to for a range")
	}
}

func readRecords(path string) ([]stx.Record, error) {
	r := io.Reader(os.Stdin)
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	recs, err := stio.ReadRecords(r)
	if err != nil {
		return nil, err
	}
	out := make([]stx.Record, len(recs))
	for i, rec := range recs {
		out[i] = stx.Record{
			Rect:     stx.Rect{MinX: rec.Rect.MinX, MinY: rec.Rect.MinY, MaxX: rec.Rect.MaxX, MaxY: rec.Rect.MaxY},
			Interval: stx.Interval{Start: rec.Interval.Start, End: rec.Interval.End},
			ObjectID: rec.ObjectID,
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stquery:", err)
	os.Exit(1)
}
