// Command stgen generates the paper's spatiotemporal datasets and writes
// them as JSON lines (one object per line) for the other tools.
//
// Usage:
//
//	stgen -family random  -n 10000 -seed 1 -o random10k.jsonl
//	stgen -family railway -n 10000 -seed 1 -o railway10k.jsonl
//	stgen -family random -n 1000 -stats        # print Table I statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"stindex/internal/datagen"
	"stindex/internal/stio"
	"stindex/internal/trajectory"
)

func main() {
	var (
		family  = flag.String("family", "random", "dataset family: random | railway | commuter")
		n       = flag.Int("n", 10000, "number of objects")
		seed    = flag.Int64("seed", 1, "random seed")
		horizon = flag.Int64("horizon", 1000, "evolution length in time instants")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print Table I statistics instead of the dataset")
		events  = flag.Bool("events", false, "emit a time-ordered observation feed for ststream instead of objects")
	)
	flag.Parse()

	objs, err := generate(*family, *n, *seed, *horizon)
	if err != nil {
		fatal(err)
	}

	if *stats {
		s := datagen.Stats(objs)
		fmt.Printf("family=%s %v\n", *family, s)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *events {
		obs := stio.ObservationsFromObjects(objs)
		if err := stio.WriteObservations(w, obs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d observations for %d %s objects (seed %d, horizon %d)\n",
			len(obs), len(objs), *family, *seed, *horizon)
		return
	}
	if err := stio.WriteObjects(w, objs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s objects (seed %d, horizon %d)\n", len(objs), *family, *seed, *horizon)
}

func generate(family string, n int, seed, horizon int64) ([]*trajectory.Object, error) {
	switch family {
	case "random":
		return datagen.Random(datagen.RandomConfig{N: n, Seed: seed, Horizon: horizon})
	case "railway":
		return datagen.Railway(datagen.RailwayConfig{N: n, Seed: seed, Horizon: horizon})
	case "commuter":
		return datagen.Commuter(datagen.CommuterConfig{N: n, Seed: seed, Horizon: horizon})
	default:
		return nil, fmt.Errorf("unknown dataset family %q (want random, railway or commuter)", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stgen:", err)
	os.Exit(1)
}
