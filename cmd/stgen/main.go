// Command stgen generates the paper's spatiotemporal datasets and writes
// them as JSON lines (one object per line) for the other tools.
//
// Usage:
//
//	stgen -family random  -n 10000 -seed 1 -o random10k.jsonl
//	stgen -family railway -n 10000 -seed 1 -o railway10k.jsonl
//	stgen -family random -n 1000 -stats        # print Table I statistics only
//	stgen -family random -n 1000000 -chunk 50000 -o big.jsonl   # bounded memory
//
// With -chunk the random family generates and writes the dataset in
// chunks of the given size, holding only one chunk in memory at a time —
// how the million-object benchmark inputs are produced without OOMing
// CI. Each chunk uses a seed derived from -seed and an id offset, so the
// full dataset is deterministic for a given (-seed, -chunk) pair.
package main

import (
	"flag"
	"fmt"
	"os"

	"stindex/internal/datagen"
	"stindex/internal/stio"
	"stindex/internal/trajectory"
)

func main() {
	var (
		family  = flag.String("family", "random", "dataset family: random | railway | commuter")
		n       = flag.Int("n", 10000, "number of objects")
		seed    = flag.Int64("seed", 1, "random seed")
		horizon = flag.Int64("horizon", 1000, "evolution length in time instants")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print Table I statistics instead of the dataset")
		events  = flag.Bool("events", false, "emit a time-ordered observation feed for ststream instead of objects")
		chunk   = flag.Int("chunk", 0, "stream random-family generation in chunks of this many objects (0 = all at once)")
	)
	flag.Parse()

	if *chunk > 0 {
		if err := generateChunked(*family, *n, *seed, *horizon, *chunk, *out, *stats, *events); err != nil {
			fatal(err)
		}
		return
	}

	objs, err := generate(*family, *n, *seed, *horizon)
	if err != nil {
		fatal(err)
	}

	if *stats {
		s := datagen.Stats(objs)
		fmt.Printf("family=%s %v\n", *family, s)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *events {
		obs := stio.ObservationsFromObjects(objs)
		if err := stio.WriteObservations(w, obs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d observations for %d %s objects (seed %d, horizon %d)\n",
			len(obs), len(objs), *family, *seed, *horizon)
		return
	}
	if err := stio.WriteObjects(w, objs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s objects (seed %d, horizon %d)\n", len(objs), *family, *seed, *horizon)
}

// generateChunked streams the random family to the output in chunks of
// bounded size, so multi-million-object datasets never hold more than
// one chunk of objects in memory.
func generateChunked(family string, n int, seed, horizon int64, chunk int, out string, stats, events bool) error {
	if family != "random" {
		return fmt.Errorf("-chunk is only supported for the random family (got %q)", family)
	}
	if stats || events {
		return fmt.Errorf("-chunk cannot be combined with -stats or -events")
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	written := 0
	for ci := 0; written < n; ci++ {
		size := chunk
		if n-written < size {
			size = n - written
		}
		objs, err := datagen.Random(datagen.RandomConfig{
			N: size, Seed: seed + int64(ci)*1_000_003, Horizon: horizon,
			FirstID: int64(written),
		})
		if err != nil {
			return err
		}
		if err := stio.WriteObjects(w, objs); err != nil {
			return err
		}
		written += size
	}
	fmt.Fprintf(os.Stderr, "wrote %d random objects in chunks of %d (seed %d, horizon %d)\n",
		written, chunk, seed, horizon)
	return nil
}

func generate(family string, n int, seed, horizon int64) ([]*trajectory.Object, error) {
	switch family {
	case "random":
		return datagen.Random(datagen.RandomConfig{N: n, Seed: seed, Horizon: horizon})
	case "railway":
		return datagen.Railway(datagen.RailwayConfig{N: n, Seed: seed, Horizon: horizon})
	case "commuter":
		return datagen.Commuter(datagen.CommuterConfig{N: n, Seed: seed, Horizon: horizon})
	default:
		return nil, fmt.Errorf("unknown dataset family %q (want random, railway or commuter)", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stgen:", err)
	os.Exit(1)
}
