// Command stsplit applies the paper's splitting pipeline to a dataset:
// it distributes a split budget over the objects and writes the resulting
// MBR records as JSON lines.
//
// Usage:
//
//	stsplit -i random10k.jsonl -budget 15000 -o records.jsonl
//	stsplit -i random10k.jsonl -budget 5000 -splitter dp -dist optimal
//	stsplit -i random10k.jsonl -baseline piecewise -o piecewise.jsonl
//
// With -shards N the split records are not written as JSON: they are
// partitioned into N shards (object granularity, -partitioner temporal,
// spatial or velocity) and -o names a shard manifest; one -index kind
// container is built and saved per shard next to it. stserve -load
// serves such a manifest as one scatter-gather snapshot:
//
//	stsplit -i random10k.jsonl -budget 15000 -shards 4 -o snap.stm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	stx "stindex"

	"stindex/internal/alloc"
	"stindex/internal/parallel"
	"stindex/internal/sharding"
	"stindex/internal/split"
	"stindex/internal/stio"
	"stindex/internal/trajectory"
)

func main() {
	var (
		in       = flag.String("i", "", "input dataset (JSON lines from stgen; default stdin)")
		out      = flag.String("o", "", "output records file (default stdout)")
		budget   = flag.Int("budget", 0, "total number of artificial splits")
		splitter = flag.String("splitter", "merge", "single-object splitter: merge | dp")
		dist     = flag.String("dist", "lagreedy", "budget distribution: lagreedy | greedy | optimal")
		baseline = flag.String("baseline", "", "bypass the budget pipeline: none | piecewise")
		qx       = flag.Float64("qx", 0, "query-aware objective: expected query x-extent (0 = volume objective)")
		qy       = flag.Float64("qy", 0, "query-aware objective: expected query y-extent")
		par      = flag.Int("parallelism", 0, "worker count for curve construction and materialization (0 = all cores, 1 = serial; output is identical either way)")
		shards   = flag.Int("shards", 0, "partition the records into this many shards and build a sharded snapshot at -o (0 = write records)")
		partner  = flag.String("partitioner", "temporal", "shard partitioner: temporal | spatial | velocity")
		indexK   = flag.String("index", "ppr", "shard container index kind: ppr | rstar | rstar-packed | hr | hybrid")
		pages    = flag.Int("pages", 0, "global buffer-page budget distributed across the shards (0 = 10 per shard)")
		codec    = flag.String("codec", "", "shard container page codec: identity | compressed (default: compressed, or $STINDEX_CODEC)")
	)
	flag.Parse()

	objs, err := readObjects(*in)
	if err != nil {
		fatal(err)
	}

	var results []split.Result
	switch *baseline {
	case "none":
		for _, o := range objs {
			results = append(results, split.None(o))
		}
	case "piecewise":
		for _, o := range objs {
			results = append(results, split.Piecewise(o))
		}
	case "":
		results, err = runPipeline(objs, *budget, *splitter, *dist, *qx, *qy, *par)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown baseline %q (want none or piecewise)", *baseline))
	}

	var records []stio.Record
	unsplit, total := 0.0, 0.0
	for _, r := range results {
		unsplit += r.Object.MBR().Volume()
		for _, b := range r.Boxes {
			// Report plain space-time volume regardless of the splitting
			// objective, so gains stay comparable across -qx/-qy settings.
			total += b.Volume()
			records = append(records, stio.Record{Rect: b.Rect, Interval: b.Interval, ObjectID: r.Object.ID})
		}
	}

	if *shards > 0 {
		if *out == "" {
			fatal(fmt.Errorf("-shards needs -o (the manifest path)"))
		}
		if err := buildSharded(records, *out, *shards, *partner, *indexK, *codec, *pages, *par); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "objects=%d records=%d volume=%.4f sharded into %d %s shards at %s\n",
			len(objs), len(records), total, *shards, *partner, *out)
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := stio.WriteRecords(w, records); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "objects=%d records=%d volume=%.4f (unsplit %.4f, gain %.1f%%) workers=%d\n",
		len(objs), len(records), total, unsplit, 100*(1-total/unsplit),
		parallel.Workers(*par, len(objs)))
}

func runPipeline(objs []*trajectory.Object, budget int, splitter, dist string, qx, qy float64, workers int) ([]split.Result, error) {
	var curveFn alloc.CurveFunc
	var splitFn alloc.Splitter
	queryAware := qx > 0 || qy > 0
	var m split.Measure
	if queryAware {
		m = split.QueryCostMeasure(qx, qy)
	}
	switch splitter {
	case "merge":
		if queryAware {
			curveFn, splitFn = split.QueryAwareCurve(m), split.QueryAwareSplitter(m)
		} else {
			curveFn, splitFn = split.MergeCurve, split.MergeSplit
		}
	case "dp":
		if queryAware {
			curveFn = func(o *trajectory.Object, maxSplits int) []float64 {
				return split.DPCurveMeasure(o, maxSplits, m)
			}
			splitFn = func(o *trajectory.Object, k int) split.Result {
				return split.DPSplitMeasure(o, k, m)
			}
		} else {
			curveFn, splitFn = split.DPCurve, split.DPSplit
		}
	default:
		return nil, fmt.Errorf("unknown splitter %q (want merge or dp)", splitter)
	}
	curves := alloc.BuildCurvesParallel(objs, curveFn, workers)
	var a alloc.Assignment
	switch dist {
	case "lagreedy":
		a = alloc.LAGreedy(curves, budget)
	case "greedy":
		a = alloc.Greedy(curves, budget)
	case "optimal":
		a = alloc.Optimal(curves, budget)
	default:
		return nil, fmt.Errorf("unknown distribution %q (want lagreedy, greedy or optimal)", dist)
	}
	return alloc.MaterializeParallel(objs, a, splitFn, workers), nil
}

// buildSharded partitions the split records and builds one container
// per shard plus the manifest stserve loads.
func buildSharded(records []stio.Record, manifest string, shards int, partitioner, kind, codec string, pages, par int) error {
	recs := make([]stx.Record, len(records))
	for i, r := range records {
		recs[i] = stx.Record{
			Rect:     stx.Rect{MinX: r.Rect.MinX, MinY: r.Rect.MinY, MaxX: r.Rect.MaxX, MaxY: r.Rect.MaxY},
			Interval: stx.Interval{Start: r.Interval.Start, End: r.Interval.End},
			ObjectID: r.ObjectID,
		}
	}
	plan, err := sharding.Partition(recs, sharding.PlanConfig{Shards: shards, Partitioner: partitioner})
	if err != nil {
		return err
	}
	_, err = sharding.Build(manifest, plan, sharding.BuildConfig{
		Kind: kind, BufferBudget: pages, Parallelism: par, Codec: stx.Codec(codec),
	})
	return err
}

func readObjects(path string) ([]*trajectory.Object, error) {
	r := io.Reader(os.Stdin)
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stio.ReadObjects(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsplit:", err)
	os.Exit(1)
}
