// Command stbench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	stbench                         # every experiment at reduced scale
//	stbench -exp fig15              # one experiment
//	stbench -full                   # the paper's 10k..80k sizes (slow!)
//	stbench -sizes 1000,5000 -queries 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stindex/internal/experiments"
	"stindex/internal/parallel"
)

var runners = []struct {
	name string
	run  func(experiments.Config) error
}{
	{"table1", func(c experiments.Config) error { _, err := experiments.Table1(c); return err }},
	{"table2", func(c experiments.Config) error { _, err := experiments.Table2(c); return err }},
	{"fig11", func(c experiments.Config) error { _, err := experiments.Fig11(c); return err }},
	{"fig12", func(c experiments.Config) error { _, err := experiments.Fig12(c); return err }},
	{"fig13", func(c experiments.Config) error { _, err := experiments.Fig13(c); return err }},
	{"fig14", func(c experiments.Config) error { _, err := experiments.Fig14(c); return err }},
	{"fig15", func(c experiments.Config) error { _, err := experiments.Fig15(c); return err }},
	{"fig16", func(c experiments.Config) error { _, err := experiments.Fig16(c); return err }},
	{"fig17", func(c experiments.Config) error { _, err := experiments.Fig17(c); return err }},
	{"fig18", func(c experiments.Config) error { _, err := experiments.Fig18(c); return err }},
	{"fig17r", func(c experiments.Config) error { _, err := experiments.Fig17Railway(c); return err }},
	{"fig18r", func(c experiments.Config) error { _, err := experiments.Fig18Railway(c); return err }},
	{"fig14c", func(c experiments.Config) error { _, err := experiments.Fig14Commuter(c); return err }},
	{"chooser", func(c experiments.Config) error { _, err := experiments.Chooser(c); return err }},
	{"overlap", func(c experiments.Config) error { _, err := experiments.Overlap(c); return err }},
	{"build", func(c experiments.Config) error { _, err := experiments.Build(c); return err }},
	{"persist", func(c experiments.Config) error { _, err := experiments.Persist(c); return err }},
	{"serve", func(c experiments.Config) error { _, err := experiments.Serve(c); return err }},
	{"shard", func(c experiments.Config) error { _, err := experiments.Shard(c); return err }},
	{"check", func(c experiments.Config) error { _, err := experiments.Check(c); return err }},
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: all | table1 | table2 | fig11..fig18 | fig17r | fig18r (railway) | fig14c (commuter) | chooser (§IV) | overlap (HR vs PPR) | build | persist | serve | shard (scatter-gather sweep) | check (differential oracle + fault matrix)")
		full    = flag.Bool("full", false, "use the paper's dataset sizes (10k..80k); hours of CPU")
		sizes   = flag.String("sizes", "", "comma-separated dataset sizes overriding the defaults")
		queries = flag.Int("queries", 0, "queries per set (default 1000)")
		seed    = flag.Int64("seed", 1, "generation seed")
		par     = flag.Int("parallelism", 0, "worker count for the split pipeline and workload measurement (0 = all cores, 1 = serial; results are identical either way)")
		backend = flag.String("backend", "", "page-store backend for every index build: mem | disk (default: $STINDEX_BACKEND, then mem; results and AvgIO are identical either way)")
		codec   = flag.String("codec", "", "default page codec for every container save: identity | compressed (default: $STINDEX_CODEC, then compressed; -exp persist always measures both)")
		shards  = flag.String("shards", "", "comma-separated shard counts for -exp shard (default 1,4,16)")
		partner = flag.String("partitioner", "", "comma-separated partitioners for -exp shard (default temporal,spatial,velocity)")
	)
	flag.Parse()
	if *backend != "" {
		// The experiments build through the facade's default backend, so
		// the flag just routes through the same environment switch.
		if err := os.Setenv("STINDEX_BACKEND", *backend); err != nil {
			fatal(err)
		}
	}
	if *codec != "" {
		// Same routing for the default page codec: experiments that save
		// containers pick it up through pagefile.DefaultCodec.
		if err := os.Setenv("STINDEX_CODEC", *codec); err != nil {
			fatal(err)
		}
	}

	cfg := experiments.Config{FullScale: *full, Queries: *queries, Seed: *seed, Parallelism: *par, Out: os.Stdout}
	fmt.Fprintf(os.Stderr, "stbench: split pipeline running on %d worker(s)\n", parallel.Workers(*par, -1))
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad size %q", s))
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	if *shards != "" {
		for _, s := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad shard count %q", s))
			}
			cfg.ShardCounts = append(cfg.ShardCounts, n)
		}
	}
	if *partner != "" {
		for _, p := range strings.Split(*partner, ",") {
			cfg.Partitioners = append(cfg.Partitioners, strings.TrimSpace(p))
		}
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		matched = true
		if err := r.run(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
	}
	if !matched {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stbench:", err)
	os.Exit(1)
}
