// Command stserve serves spatiotemporal queries over HTTP/JSON from
// saved index containers: a snapshot registry with atomic hot-swap, a
// session pool of per-worker query views, a bounded admission queue and
// built-in metrics.
//
// Usage:
//
//	stserve -load default=index.sti
//	stserve -listen :8080 -load fleet=fleet.sti -load rail=rail.sti -workers 8
//	stserve -load default=index.sti -queue 128 -reject -timeout 500ms
//	stserve -load default=index.sti -backend mmap -cache-mb 256
//
// Endpoints (see internal/service.NewHandler):
//
//	GET  /query?rect=minx,miny,maxx,maxy&t=5         snapshot query
//	GET  /query?rect=...&from=0&to=100               range query
//	POST /query            {"snapshot","rect":[...],"t"} or {"rect","from","to"}
//	GET  /snapshots        list registered snapshots
//	POST /snapshots/load   {"name","path"}  load or hot-swap a container
//	POST /snapshots/drop   {"name"}
//	GET  /metrics          QPS, latency percentiles, hit rates, queue depth
//	GET  /healthz
//
// With -ingest NAME the server additionally runs the live ingestion
// pipeline (see internal/ingest): a WAL-backed ingest endpoint whose
// accepted observations are queryable under NAME immediately, a
// background freezer that periodically publishes the live index as a
// compressed container with zero downtime, and crash recovery that
// replays the journal on startup:
//
//	POST /ingest           one observation, a JSON array, or a
//	                       concatenated-JSON feed (atomic batch)
//	POST /ingest/finish    {"t":T} ends all live objects; {"id":I,"t":T} one
//	POST /ingest/freeze    force a snapshot + journal truncation
//
// Containers saved with either page codec load transparently: the codec
// is recorded in the container header and autodetected at open, so a
// registry can serve identity and compressed snapshots side by side
// (compressed ones stay compressed at rest and decode once per page at
// the cache boundary).
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued queries finish,
// the ingestion pipeline freezes one last time, then the containers
// close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	stx "stindex"

	"stindex/internal/ingest"
	"stindex/internal/service"
)

// loadFlags collects repeatable -load name=path pairs in order.
type loadFlags []struct{ name, path string }

func (l *loadFlags) String() string { return fmt.Sprintf("%d snapshots", len(*l)) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var loads loadFlags
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 0, "session-pool size: concurrently executing queries (0 = all cores)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = 64)")
		batch   = flag.Int("batch", 0, "same-snapshot batch size per worker (0/1 = no batching)")
		timeout = flag.Duration("timeout", 0, "default per-query deadline for requests without one (0 = none)")
		reject  = flag.Bool("reject", false, "fail fast with 503 when the queue is full instead of blocking")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		cacheMB = flag.Int("cache-mb", 0, "shared page-cache budget in MiB across all snapshots (0 = no shared cache)")
		backend = flag.String("backend", "", "container read flavour: disk (lazy pread), mmap, mem (eager); default STINDEX_BACKEND, then disk")

		ingestName     = flag.String("ingest", "", "serve a live ingestion pipeline under this snapshot name")
		ingestDir      = flag.String("ingest-dir", "", "journal directory for -ingest (WAL segments, freezes, CURRENT)")
		ingestLambda   = flag.Float64("ingest-lambda", 0.01, "online split penalty for a fresh ingested stream (a recovered journal keeps its own)")
		ingestQueue    = flag.Int("ingest-queue", 0, "ingest admission queue depth in batches (0 = 64); a full queue answers 503")
		freezeEvery    = flag.Int("freeze-every", 0, "freeze after this many accepted records (0 = only by interval or on demand)")
		freezeInterval = flag.Duration("freeze-interval", 0, "freeze on this wall-clock period (0 = off)")
		walSegmentKB   = flag.Int("wal-segment-kb", 0, "WAL segment rotation size in KiB (0 = 4096)")
	)
	flag.Var(&loads, "load", "snapshot to serve, as name=container-path (repeatable)")
	flag.Parse()
	if len(loads) == 0 && *ingestName == "" {
		fatal(errors.New("provide at least one -load name=path or -ingest name"))
	}
	if *ingestName != "" && *ingestDir == "" {
		fatal(errors.New("-ingest requires -ingest-dir"))
	}

	switch *backend {
	case "", "disk", "mmap", "mem":
	default:
		fatal(fmt.Errorf("unknown -backend %q (want disk, mmap or mem)", *backend))
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchSize:      *batch,
		DefaultTimeout: *timeout,
		RejectWhenFull: *reject,
		CacheMB:        *cacheMB,
		OpenBackend:    stx.Backend(*backend),
	})
	for _, l := range loads {
		snap, err := svc.Registry().Load(l.name, l.path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stserve: loaded %q from %s (gen %d)\n", snap.Name(), l.path, snap.Gen())
	}

	var in *ingest.Ingester
	handler := http.Handler(service.NewHandler(svc))
	if *ingestName != "" {
		var err error
		in, err = ingest.Open(ingest.Config{
			Dir:            *ingestDir,
			Name:           *ingestName,
			Registry:       svc.Registry(),
			Lambda:         *ingestLambda,
			Codec:          stx.CodecCompressed,
			QueueDepth:     *ingestQueue,
			SegmentBytes:   int64(*walSegmentKB) << 10,
			FreezeEvery:    *freezeEvery,
			FreezeInterval: *freezeInterval,
		})
		if err != nil {
			fatal(err)
		}
		st := in.Stats()
		fmt.Fprintf(os.Stderr, "stserve: ingesting %q from %s (seq %d, %d replayed, %d torn bytes dropped)\n",
			*ingestName, *ingestDir, st.Seq, st.Replayed, st.TornBytesRecovered)
		svc.SetIngestStats(func() *service.IngestStats {
			st := in.Stats()
			return &st
		})
		mux := http.NewServeMux()
		ih := ingest.NewHandler(in)
		mux.Handle("/ingest", ih)
		mux.Handle("/ingest/", ih)
		mux.Handle("/", handler)
		handler = mux
	}

	srv := &http.Server{Addr: *listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stserve: listening on %s\n", *listen)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "stserve: %s — draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Stop accepting connections and wait for in-flight HTTP requests,
	// then drain the query queue and close the containers.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "stserve: shutdown: %v\n", err)
	}
	// The pipeline closes before the service: queued batches commit, a
	// final freeze lands, and only then do the snapshots drain and close.
	if in != nil {
		if err := in.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "stserve: ingest close: %v\n", err)
		}
	}
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr, "stserve: served %d queries (%.1f qps, p99 %dµs), bye\n",
		m.Completed, m.QPS, m.P99US)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stserve:", err)
	os.Exit(1)
}
