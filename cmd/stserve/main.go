// Command stserve serves spatiotemporal queries over HTTP/JSON from
// saved index containers: a snapshot registry with atomic hot-swap, a
// session pool of per-worker query views, a bounded admission queue and
// built-in metrics.
//
// Usage:
//
//	stserve -load default=index.sti
//	stserve -listen :8080 -load fleet=fleet.sti -load rail=rail.sti -workers 8
//	stserve -load default=index.sti -queue 128 -reject -timeout 500ms
//	stserve -load default=index.sti -backend mmap -cache-mb 256
//
// Endpoints (see internal/service.NewHandler):
//
//	GET  /query?rect=minx,miny,maxx,maxy&t=5         snapshot query
//	GET  /query?rect=...&from=0&to=100               range query
//	POST /query            {"snapshot","rect":[...],"t"} or {"rect","from","to"}
//	GET  /snapshots        list registered snapshots
//	POST /snapshots/load   {"name","path"}  load or hot-swap a container
//	POST /snapshots/drop   {"name"}
//	GET  /metrics          QPS, latency percentiles, hit rates, queue depth
//	GET  /healthz
//
// Containers saved with either page codec load transparently: the codec
// is recorded in the container header and autodetected at open, so a
// registry can serve identity and compressed snapshots side by side
// (compressed ones stay compressed at rest and decode once per page at
// the cache boundary).
//
// SIGINT/SIGTERM drain gracefully: in-flight and queued queries finish,
// then the containers close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	stx "stindex"

	"stindex/internal/service"
)

// loadFlags collects repeatable -load name=path pairs in order.
type loadFlags []struct{ name, path string }

func (l *loadFlags) String() string { return fmt.Sprintf("%d snapshots", len(*l)) }

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var loads loadFlags
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 0, "session-pool size: concurrently executing queries (0 = all cores)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = 64)")
		batch   = flag.Int("batch", 0, "same-snapshot batch size per worker (0/1 = no batching)")
		timeout = flag.Duration("timeout", 0, "default per-query deadline for requests without one (0 = none)")
		reject  = flag.Bool("reject", false, "fail fast with 503 when the queue is full instead of blocking")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		cacheMB = flag.Int("cache-mb", 0, "shared page-cache budget in MiB across all snapshots (0 = no shared cache)")
		backend = flag.String("backend", "", "container read flavour: disk (lazy pread), mmap, mem (eager); default STINDEX_BACKEND, then disk")
	)
	flag.Var(&loads, "load", "snapshot to serve, as name=container-path (repeatable)")
	flag.Parse()
	if len(loads) == 0 {
		fatal(errors.New("provide at least one -load name=path"))
	}

	switch *backend {
	case "", "disk", "mmap", "mem":
	default:
		fatal(fmt.Errorf("unknown -backend %q (want disk, mmap or mem)", *backend))
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchSize:      *batch,
		DefaultTimeout: *timeout,
		RejectWhenFull: *reject,
		CacheMB:        *cacheMB,
		OpenBackend:    stx.Backend(*backend),
	})
	for _, l := range loads {
		snap, err := svc.Registry().Load(l.name, l.path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stserve: loaded %q from %s (gen %d)\n", snap.Name(), l.path, snap.Gen())
	}

	srv := &http.Server{Addr: *listen, Handler: service.NewHandler(svc)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stserve: listening on %s\n", *listen)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "stserve: %s — draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Stop accepting connections and wait for in-flight HTTP requests,
	// then drain the query queue and close the containers.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "stserve: shutdown: %v\n", err)
	}
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr, "stserve: served %d queries (%.1f qps, p99 %dµs), bye\n",
		m.Completed, m.QPS, m.P99US)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stserve:", err)
	os.Exit(1)
}
