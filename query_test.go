package stindex

import (
	"errors"
	"math"
	"sort"
	"testing"
)

// queryTestKind is one built index kind plus the record set its answers
// are defined over (the split records for batch kinds, the stream's own
// piece set for the online kind).
type queryTestKind struct {
	name    string
	idx     Index
	records []Record
}

// buildQueryTestKinds builds all five index kinds over one random
// dataset, so the kNN/trajectory properties are asserted against every
// answer path.
func buildQueryTestKinds(t *testing.T, objs []*Object) []queryTestKind {
	t.Helper()
	records, _, err := SplitDataset(objs, SplitConfig{Budget: len(objs) * 3 / 2})
	if err != nil {
		t.Fatalf("SplitDataset: %v", err)
	}
	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatalf("BuildPPR: %v", err)
	}
	rstar, err := BuildRStar(records, RStarOptions{ShuffleSeed: 42})
	if err != nil {
		t.Fatalf("BuildRStar: %v", err)
	}
	hr, err := BuildHR(records, HROptions{})
	if err != nil {
		t.Fatalf("BuildHR: %v", err)
	}
	hybrid, err := BuildHybrid(records, HybridOptions{RStar: RStarOptions{ShuffleSeed: 42}})
	if err != nil {
		t.Fatalf("BuildHybrid: %v", err)
	}
	six := replayStream(t, objs)
	pieces, err := six.PieceRecords()
	if err != nil {
		t.Fatalf("PieceRecords: %v", err)
	}
	return []queryTestKind{
		{"ppr", ppr, records},
		{"rstar", rstar, records},
		{"hr", hr, records},
		{"hybrid", hybrid, records},
		{"stream", six, pieces},
	}
}

// replayStream feeds the objects through the online indexer in global
// time order.
func replayStream(t *testing.T, objs []*Object) *StreamIndex {
	t.Helper()
	start, end := objs[0].Lifetime().Start, objs[0].Lifetime().End
	for _, o := range objs {
		lt := o.Lifetime()
		if lt.Start < start {
			start = lt.Start
		}
		if lt.End > end {
			end = lt.End
		}
	}
	six, err := NewStreamIndex(StreamOptions{}, start)
	if err != nil {
		t.Fatalf("NewStreamIndex: %v", err)
	}
	for tm := start; tm <= end; tm++ {
		for _, o := range objs {
			lt := o.Lifetime()
			if tm == lt.End {
				if err := six.Finish(o.ID(), tm); err != nil {
					t.Fatalf("Finish(%d, %d): %v", o.ID(), tm, err)
				}
			}
			if lt.Start <= tm && tm < lt.End {
				r, ok := o.At(tm)
				if !ok {
					t.Fatalf("object %d missing position at %d", o.ID(), tm)
				}
				if err := six.Observe(o.ID(), tm, r); err != nil {
					t.Fatalf("Observe(%d, %d): %v", o.ID(), tm, err)
				}
			}
		}
	}
	if six.Live() > 0 {
		if err := six.FinishAll(end + 1); err != nil {
			t.Fatalf("FinishAll: %v", err)
		}
	}
	return six
}

// bruteKNN is the reference kNN: per-object minimum squared MBR
// distance over the records alive at t, ranked ascending
// (Dist2, ObjectID), truncated to k. It uses Rect.MinDist2 — the same
// arithmetic the traversals use — so comparisons are bit-exact.
func bruteKNN(records []Record, x, y float64, t int64, k int) []Neighbor {
	best := make(map[int64]float64)
	for _, r := range records {
		if r.Interval.Start > t || t >= r.Interval.End {
			continue
		}
		d2 := r.Rect.MinDist2(x, y)
		if cur, ok := best[r.ObjectID]; !ok || d2 < cur {
			best[r.ObjectID] = d2
		}
	}
	out := make([]Neighbor, 0, len(best))
	for id, d2 := range best {
		out = append(out, Neighbor{ObjectID: id, Dist2: d2})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKNNProperties pins the kNN contract on every kind over randomized
// datasets: answers match the brute-force ranking verbatim, k beyond the
// live population degenerates to the full ranking whose id set equals an
// unbounded snapshot query at the same instant, smaller k is a strict
// prefix of larger k (deterministic tie-breaking), and repeated runs are
// bit-identical.
func TestKNNProperties(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		objs := genObjects(t, 150, seed)
		kinds := buildQueryTestKinds(t, objs)
		everything := Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}
		probes := []struct{ x, y float64 }{
			{0.5, 0.5}, {0.1, 0.9}, {0.0, 0.0}, {1.0, 1.0}, {0.25, 0.75},
		}
		for _, kind := range kinds {
			for ti, at := range []int64{0, 100, 500, 900} {
				p := probes[ti%len(probes)]
				want := bruteKNN(kind.records, p.x, p.y, at, 1<<30)
				full, err := kind.idx.Nearest(p.x, p.y, at, 1<<30)
				if err != nil {
					t.Fatalf("%s seed %d t=%d: Nearest: %v", kind.name, seed, at, err)
				}
				if !neighborsEqual(full, want) {
					t.Fatalf("%s seed %d t=%d: full ranking diverges from brute force:\n got %v\nwant %v",
						kind.name, seed, at, full, want)
				}
				// k beyond the population ranks exactly the objects an
				// unbounded window query at the same instant finds.
				snapIDs, err := kind.idx.Snapshot(everything, at)
				if err != nil {
					t.Fatalf("%s: Snapshot: %v", kind.name, err)
				}
				gotIDs := make([]int64, len(full))
				for i, nb := range full {
					gotIDs[i] = nb.ObjectID
				}
				if !equalIDs(sortedIDs(gotIDs), sortedIDs(append([]int64(nil), snapIDs...))) {
					t.Fatalf("%s seed %d t=%d: kNN(k=inf) ids != snapshot ids", kind.name, seed, at)
				}
				// Prefix property: every smaller k is a verbatim prefix.
				for _, k := range []int{1, 2, 5, 17} {
					got, err := kind.idx.Nearest(p.x, p.y, at, k)
					if err != nil {
						t.Fatalf("%s: Nearest k=%d: %v", kind.name, k, err)
					}
					n := k
					if n > len(full) {
						n = len(full)
					}
					if !neighborsEqual(got, full[:n]) {
						t.Fatalf("%s seed %d t=%d k=%d: not a prefix of the full ranking:\n got %v\nwant %v",
							kind.name, seed, at, k, got, full[:n])
					}
				}
				// Determinism: a second run answers bit-identically.
				again, err := kind.idx.Nearest(p.x, p.y, at, 1<<30)
				if err != nil {
					t.Fatalf("%s: Nearest rerun: %v", kind.name, err)
				}
				if !neighborsEqual(again, full) {
					t.Fatalf("%s seed %d t=%d: rerun diverged", kind.name, seed, at)
				}
			}
		}
	}
}

// TestTrajectoryProperties pins the trajectory contract on every kind:
// hits are sorted ascending by object id with positive piece counts,
// the id set of trajectory(R, [t, t+1)) equals the snapshot answer at t,
// total pieces equal the brute-force matching-record count, and an
// inverted interval answers empty without error.
func TestTrajectoryProperties(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		objs := genObjects(t, 150, seed)
		kinds := buildQueryTestKinds(t, objs)
		regions := []Rect{
			{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6},
			{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
			{MinX: 0.45, MinY: 0.45, MaxX: 0.55, MaxY: 0.55},
		}
		intervals := []Interval{{Start: 0, End: 200}, {Start: 300, End: 301}, {Start: 100, End: 900}}
		for _, kind := range kinds {
			for ri, r := range regions {
				iv := intervals[ri%len(intervals)]
				hits, err := kind.idx.Trajectory(r, iv)
				if err != nil {
					t.Fatalf("%s seed %d: Trajectory: %v", kind.name, seed, err)
				}
				total := 0
				for i, h := range hits {
					if h.Pieces <= 0 {
						t.Fatalf("%s: hit %v has non-positive pieces", kind.name, h)
					}
					if i > 0 && hits[i-1].ObjectID >= h.ObjectID {
						t.Fatalf("%s: hits not strictly ascending by id: %v", kind.name, hits)
					}
					total += h.Pieces
				}
				// Total pieces = matching records, counted brute force.
				wantTotal := 0
				wantIDs := map[int64]bool{}
				for _, rec := range kind.records {
					if rec.Interval.Start < iv.End && iv.Start < rec.Interval.End && rec.Rect.Intersects(r) {
						wantTotal++
						wantIDs[rec.ObjectID] = true
					}
				}
				if total != wantTotal || len(hits) != len(wantIDs) {
					t.Fatalf("%s seed %d region %d: %d hits totalling %d pieces, brute force says %d objects, %d records",
						kind.name, seed, ri, len(hits), total, len(wantIDs), wantTotal)
				}
				// Single-instant trajectory ≡ snapshot, as id sets.
				at := iv.Start
				inst, err := kind.idx.Trajectory(r, Interval{Start: at, End: at + 1})
				if err != nil {
					t.Fatalf("%s: instant Trajectory: %v", kind.name, err)
				}
				snapIDs, err := kind.idx.Snapshot(r, at)
				if err != nil {
					t.Fatalf("%s: Snapshot: %v", kind.name, err)
				}
				instIDs := make([]int64, len(inst))
				for i, h := range inst {
					instIDs[i] = h.ObjectID
				}
				if !equalIDs(instIDs, sortedIDs(append([]int64(nil), snapIDs...))) {
					t.Fatalf("%s seed %d: trajectory[t,t+1) ids %v != snapshot ids %v",
						kind.name, seed, instIDs, sortedIDs(snapIDs))
				}
			}
			// Inverted and empty intervals: empty answer, no error.
			for _, iv := range []Interval{{Start: 50, End: 50}, {Start: 80, End: 20}} {
				hits, err := kind.idx.Trajectory(regions[0], iv)
				if err != nil {
					t.Fatalf("%s: inverted interval errored: %v", kind.name, err)
				}
				if len(hits) != 0 {
					t.Fatalf("%s: inverted interval answered %v", kind.name, hits)
				}
			}
		}
	}
}

// TestKNNValidation pins the ErrBadQuery contract: k < 1 and non-finite
// points are rejected on every kind, wrapped so HTTP can map them to 400.
func TestKNNValidation(t *testing.T) {
	objs := genObjects(t, 40, 9)
	kinds := buildQueryTestKinds(t, objs)
	bad := []struct {
		name string
		x, y float64
		k    int
	}{
		{"k=0", 0.5, 0.5, 0},
		{"k=-3", 0.5, 0.5, -3},
		{"x=NaN", math.NaN(), 0.5, 3},
		{"y=+Inf", 0.5, math.Inf(1), 3},
	}
	for _, kind := range kinds {
		for _, c := range bad {
			if _, err := kind.idx.Nearest(c.x, c.y, 100, c.k); !errors.Is(err, ErrBadQuery) {
				t.Fatalf("%s %s: got %v, want ErrBadQuery", kind.name, c.name, err)
			}
		}
	}
	// The wrappers validate too.
	sync := Synchronized(kinds[0].idx)
	if _, err := sync.Nearest(math.NaN(), 0, 0, 1); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("SyncIndex: got %v, want ErrBadQuery", err)
	}
	ref := Refined(kinds[0].idx, objs)
	if _, err := ref.Nearest(0.5, 0.5, 0, -1); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("RefinedIndex: got %v, want ErrBadQuery", err)
	}
}

// TestQueryViewKNNAgreement proves per-goroutine query views answer the
// new kinds identically to the base index — the contract the parallel
// diff pass and the serving layer rely on.
func TestQueryViewKNNAgreement(t *testing.T) {
	objs := genObjects(t, 120, 11)
	kinds := buildQueryTestKinds(t, objs)
	for _, kind := range kinds {
		qv, ok := kind.idx.(QueryViewer)
		if !ok {
			continue
		}
		view := qv.QueryView()
		for _, at := range []int64{0, 250, 750} {
			want, err := kind.idx.Nearest(0.4, 0.6, at, 9)
			if err != nil {
				t.Fatalf("%s: base Nearest: %v", kind.name, err)
			}
			got, err := view.Nearest(0.4, 0.6, at, 9)
			if err != nil {
				t.Fatalf("%s: view Nearest: %v", kind.name, err)
			}
			if !neighborsEqual(got, want) {
				t.Fatalf("%s t=%d: view kNN %v != base %v", kind.name, at, got, want)
			}
		}
		r := Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.7, MaxY: 0.7}
		iv := Interval{Start: 100, End: 600}
		want, err := kind.idx.Trajectory(r, iv)
		if err != nil {
			t.Fatalf("%s: base Trajectory: %v", kind.name, err)
		}
		got, err := view.Trajectory(r, iv)
		if err != nil {
			t.Fatalf("%s: view Trajectory: %v", kind.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: view trajectory %v != base %v", kind.name, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: view trajectory %v != base %v", kind.name, got, want)
			}
		}
	}
}
