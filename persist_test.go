package stindex

import (
	"bytes"
	"strings"
	"testing"
)

func TestPPRIndexRoundTrip(t *testing.T) {
	objs := genObjects(t, 300, 21)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPPRIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Records() != orig.Records() || loaded.Pages() != orig.Pages() {
		t.Fatalf("loaded index shape differs: %d/%d records, %d/%d pages",
			loaded.Records(), orig.Records(), loaded.Pages(), orig.Pages())
	}
	if _, err := loaded.Tree().Validate(); err != nil {
		t.Fatalf("loaded tree invalid: %v", err)
	}
	queries, err := GenerateQueries(QuerySnapshotMixed, 1000, 31)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:80] {
		a, err := RunQuery(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunQuery(loaded, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("query %d: original %d results, loaded %d", qi, len(a), len(b))
		}
	}
	// Identical cold-cache I/O: the loaded tree is byte-identical.
	orig.ResetBuffer()
	loaded.ResetBuffer()
	if _, err := RunQuery(orig, queries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := RunQuery(loaded, queries[0]); err != nil {
		t.Fatal(err)
	}
	if orig.IOStats() != loaded.IOStats() {
		t.Fatalf("I/O differs after reload: %+v vs %+v", orig.IOStats(), loaded.IOStats())
	}
}

func TestRStarIndexRoundTrip(t *testing.T) {
	objs := genObjects(t, 300, 22)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 300})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := BuildRStar(records, RStarOptions{ShuffleSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadRStarIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TimeScale() != orig.TimeScale() {
		t.Fatalf("time scale differs: %g vs %g", loaded.TimeScale(), orig.TimeScale())
	}
	if err := loaded.Tree().Validate(); err != nil {
		t.Fatalf("loaded tree invalid: %v", err)
	}
	queries, err := GenerateQueries(QueryRangeSmall, 1000, 33)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:80] {
		a, err := RunQuery(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunQuery(loaded, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("query %d: original %d results, loaded %d", qi, len(a), len(b))
		}
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	if _, err := ReadPPRIndex(strings.NewReader("garbage data stream")); err == nil {
		t.Fatal("accepted garbage as a PPR image")
	}
	if _, err := ReadRStarIndex(strings.NewReader("garbage data stream")); err == nil {
		t.Fatal("accepted garbage as an R* image")
	}

	// Kind mismatch: a PPR image is not an R* image.
	objs := genObjects(t, 50, 23)
	records := UnsplitRecords(objs)
	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ppr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRStarIndex(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loaded a PPR image as an R* index")
	}

	// Truncated image.
	if _, err := ReadPPRIndex(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("accepted a truncated image")
	}
}
