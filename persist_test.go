package stindex

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// persistFixtures builds one index of every container kind over the same
// dataset on the given backend.
func persistFixtures(t *testing.T, backend Backend) map[string]Index {
	t.Helper()
	objs := genObjects(t, 300, 21)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}
	ppr, err := BuildPPR(records, PPROptions{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	rstar, err := BuildRStar(records, RStarOptions{ShuffleSeed: 5, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := BuildHR(records, HROptions{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := BuildHybrid(records, HybridOptions{
		PPR:   PPROptions{Backend: backend},
		RStar: RStarOptions{ShuffleSeed: 5, Backend: backend},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"ppr": ppr, "rstar": rstar, "hr": hr, "hybrid": hybrid}
}

func persistQueries(t *testing.T) []Query {
	t.Helper()
	snap, err := GenerateQueries(QuerySnapshotMixed, 1000, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := GenerateQueries(QueryRangeSmall, 1000, 33)
	if err != nil {
		t.Fatal(err)
	}
	return append(snap[:40:40], rng[:40]...)
}

// expectSameAnswers runs the queries on both indexes and demands
// identical result sets and identical cold-buffer I/O statistics.
func expectSameAnswers(t *testing.T, label string, orig, loaded Index, queries []Query) {
	t.Helper()
	for qi, q := range queries {
		a, err := RunQuery(orig, q)
		if err != nil {
			t.Fatalf("%s query %d on original: %v", label, qi, err)
		}
		b, err := RunQuery(loaded, q)
		if err != nil {
			t.Fatalf("%s query %d on loaded: %v", label, qi, err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("%s query %d: original %d results, loaded %d", label, qi, len(a), len(b))
		}
	}
	// Replaying the workload cold must cost exactly the same disk
	// accesses: the loaded tree's page layout is byte-identical and the
	// buffer policy deterministic (the paper's AvgIO metric depends on
	// both).
	orig.ResetBuffer()
	loaded.ResetBuffer()
	for _, q := range queries[:10] {
		if _, err := RunQuery(orig, q); err != nil {
			t.Fatal(err)
		}
		if _, err := RunQuery(loaded, q); err != nil {
			t.Fatal(err)
		}
	}
	if orig.IOStats() != loaded.IOStats() {
		t.Fatalf("%s: I/O differs after reload: %+v vs %+v", label, orig.IOStats(), loaded.IOStats())
	}
}

// TestContainerRoundTripAllKinds saves and reloads every index kind
// through both the eager (Encode/Decode) and lazy (Save/Open) paths, on
// both page-store backends, and demands identical answers and I/O.
func TestContainerRoundTripAllKinds(t *testing.T) {
	queries := persistQueries(t)
	for _, backend := range []Backend{BackendMemory, BackendDisk} {
		fixtures := persistFixtures(t, backend)
		dir := t.TempDir()
		for kind, orig := range fixtures {
			label := kind + "/" + string(backend)

			var buf bytes.Buffer
			if _, err := EncodeIndex(&buf, orig); err != nil {
				t.Fatalf("%s: encode: %v", label, err)
			}
			decoded, err := DecodeIndex(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: decode: %v", label, err)
			}
			if decoded.Kind() != orig.Kind() {
				t.Fatalf("%s: decoded kind %q, want %q", label, decoded.Kind(), orig.Kind())
			}
			if decoded.Records() != orig.Records() || decoded.Pages() != orig.Pages() {
				t.Fatalf("%s: decoded shape %d records/%d pages, want %d/%d",
					label, decoded.Records(), decoded.Pages(), orig.Records(), orig.Pages())
			}
			expectSameAnswers(t, label+"/eager", orig, decoded, queries)

			path := filepath.Join(dir, kind+".sti")
			if err := SaveIndex(path, orig); err != nil {
				t.Fatalf("%s: save: %v", label, err)
			}
			opened, err := OpenIndex(path)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			if opened.Kind() != orig.Kind() {
				t.Fatalf("%s: opened kind %q, want %q", label, opened.Kind(), orig.Kind())
			}
			expectSameAnswers(t, label+"/lazy", orig, opened, queries)
			if err := CloseIndex(opened); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			if err := CloseIndex(opened); err != nil {
				t.Fatalf("%s: second close: %v", label, err)
			}
		}
	}
}

// TestCrossBackendBitIdentical builds the same indexes on the in-memory
// and disk-backed stores and demands byte-identical container images —
// the two backends must produce the same page layout, free list and
// allocation order.
func TestCrossBackendBitIdentical(t *testing.T) {
	mem := persistFixtures(t, BackendMemory)
	disk := persistFixtures(t, BackendDisk)
	for kind, a := range mem {
		b := disk[kind]
		var abuf, bbuf bytes.Buffer
		if _, err := EncodeIndex(&abuf, a); err != nil {
			t.Fatal(err)
		}
		if _, err := EncodeIndex(&bbuf, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(abuf.Bytes(), bbuf.Bytes()) {
			t.Fatalf("%s: mem and disk backends produced different container images (%d vs %d bytes)",
				kind, abuf.Len(), bbuf.Len())
		}

		// Every open flavour of the saved container — lazy window, mmap,
		// eager memory — must re-encode to the identical image.
		path := filepath.Join(t.TempDir(), "ix.stic")
		if err := SaveIndex(path, a); err != nil {
			t.Fatal(err)
		}
		for _, backend := range []Backend{BackendDisk, BackendMmap, BackendMemory} {
			ox, err := OpenIndexOptions(path, OpenOptions{Backend: backend})
			if err != nil {
				t.Fatalf("%s: open backend %q: %v", kind, backend, err)
			}
			var obuf bytes.Buffer
			if _, err := EncodeIndex(&obuf, ox); err != nil {
				t.Fatalf("%s: re-encode via %q: %v", kind, backend, err)
			}
			if !bytes.Equal(abuf.Bytes(), obuf.Bytes()) {
				t.Fatalf("%s: open backend %q re-encoded a different image (%d vs %d bytes)",
					kind, backend, abuf.Len(), obuf.Len())
			}
			if err := CloseIndex(ox); err != nil {
				t.Fatalf("%s: close %q: %v", kind, backend, err)
			}
		}
	}
}

// TestCrossCodecBitIdentical saves every kind with both page codecs and
// demands the codec be invisible above the store and deterministic
// below it: a container opened through any backend answers every query
// identically to the built index with identical cold-buffer I/O, and
// re-encoding the opened container with its own codec reproduces the
// saved image byte for byte. The compressed image must also actually be
// smaller — node pages are structured, so a codec that failed to shrink
// them would mean the delta/dup encoder silently fell back to raw.
func TestCrossCodecBitIdentical(t *testing.T) {
	queries := persistQueries(t)
	fixtures := persistFixtures(t, BackendMemory)
	dir := t.TempDir()
	for kind, orig := range fixtures {
		sizes := map[Codec]int{}
		for _, codec := range []Codec{CodecIdentity, CodecCompressed} {
			var buf bytes.Buffer
			if _, err := EncodeIndexOptions(&buf, orig, SaveOptions{Codec: codec}); err != nil {
				t.Fatalf("%s/%s: encode: %v", kind, codec, err)
			}
			image := buf.Bytes()
			sizes[codec] = len(image)
			path := filepath.Join(dir, kind+"-"+string(codec)+".stic")
			if err := os.WriteFile(path, image, 0o644); err != nil {
				t.Fatal(err)
			}
			for _, backend := range []Backend{BackendDisk, BackendMmap, BackendMemory} {
				label := kind + "/" + string(codec) + "/" + string(backend)
				ox, err := OpenIndexOptions(path, OpenOptions{Backend: backend})
				if err != nil {
					t.Fatalf("%s: open: %v", label, err)
				}
				expectSameAnswers(t, label, orig, ox, queries)
				var re bytes.Buffer
				if _, err := EncodeIndexOptions(&re, ox, SaveOptions{Codec: codec}); err != nil {
					t.Fatalf("%s: re-encode: %v", label, err)
				}
				if !bytes.Equal(image, re.Bytes()) {
					t.Fatalf("%s: re-encode produced a different image (%d vs %d bytes)",
						label, len(image), re.Len())
				}
				if err := CloseIndex(ox); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}
			}
		}
		if sizes[CodecCompressed] >= sizes[CodecIdentity] {
			t.Errorf("%s: compressed container (%d bytes) not smaller than identity (%d bytes)",
				kind, sizes[CodecCompressed], sizes[CodecIdentity])
		}
	}
}

// TestStreamSnapshotRoundTrip persists a live streaming index mid-history
// and reopens it: historical queries must answer identically, and the
// lazily reopened copy must be read-only.
func TestStreamSnapshotRoundTrip(t *testing.T) {
	objs := genObjects(t, 120, 13)
	six, err := NewStreamIndex(StreamOptions{Lambda: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		t     int64
		obj   int
		final bool
	}
	var events []ev
	for i, o := range objs {
		lt := o.Lifetime()
		for tm := lt.Start; tm < lt.End; tm++ {
			events = append(events, ev{t: tm, obj: i})
		}
		events = append(events, ev{t: lt.End, obj: i, final: true})
	}
	sortEvents := func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].final && !events[b].final
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && sortEvents(j, j-1); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	// Replay only the first 70% of history so live, still-open objects
	// are part of the persisted state.
	cut := events[len(events)*7/10].t
	for _, e := range events {
		if e.t >= cut {
			break
		}
		o := objs[e.obj]
		if e.final {
			if err := six.Finish(o.ID(), e.t); err != nil {
				t.Fatal(err)
			}
			continue
		}
		r, _ := o.At(e.t)
		if err := six.Observe(o.ID(), e.t, r); err != nil {
			t.Fatal(err)
		}
	}
	if six.Live() == 0 {
		t.Fatal("want live objects at the cut point")
	}

	path := filepath.Join(t.TempDir(), "stream.sti")
	if err := SaveIndex(path, six); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseIndex(opened)
	reopened, ok := opened.(*StreamIndex)
	if !ok {
		t.Fatalf("opened %T, want *StreamIndex", opened)
	}
	if reopened.Records() != six.Records() || reopened.Cuts() != six.Cuts() || reopened.Live() != six.Live() {
		t.Fatalf("reopened counters differ: records %d/%d cuts %d/%d live %d/%d",
			reopened.Records(), six.Records(), reopened.Cuts(), six.Cuts(), reopened.Live(), six.Live())
	}
	window := Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
	for _, at := range []int64{0, cut / 2, cut - 1} {
		a, err := six.Snapshot(window, at)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reopened.Snapshot(window, at)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("t=%d: original %d results, reopened %d", at, len(a), len(b))
		}
	}
	a, err := six.Range(window, Interval{Start: 0, End: cut})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.Range(window, Interval{Start: 0, End: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(a), sortedIDs(b)) {
		t.Fatalf("range: original %d results, reopened %d", len(a), len(b))
	}
	// Identical cold-buffer I/O on the historical workload.
	six.ResetBuffer()
	reopened.ResetBuffer()
	if _, err := six.Snapshot(window, cut/2); err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Snapshot(window, cut/2); err != nil {
		t.Fatal(err)
	}
	if six.IOStats() != reopened.IOStats() {
		t.Fatalf("I/O differs after reopen: %+v vs %+v", six.IOStats(), reopened.IOStats())
	}
	// The lazily opened snapshot sits on a read-only store: growing the
	// history must fail cleanly, not corrupt the file.
	if err := reopened.Observe(objs[0].ID(), cut+1000, window); err == nil {
		t.Fatal("Observe succeeded on a read-only reopened snapshot")
	}
}

// TestPersistRejectsGarbage feeds the container readers malformed input:
// they must return errors — never panic, never mis-load.
func TestPersistRejectsGarbage(t *testing.T) {
	if _, err := DecodeIndex(strings.NewReader("garbage data stream")); err == nil {
		t.Fatal("accepted garbage as a container")
	}
	dir := t.TempDir()
	garbagePath := filepath.Join(dir, "garbage.sti")
	if err := os.WriteFile(garbagePath, []byte("garbage data stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenIndex(garbagePath); err == nil {
		t.Fatal("opened garbage as a container")
	}
	if _, err := OpenIndex(filepath.Join(dir, "missing.sti")); err == nil {
		t.Fatal("opened a missing file")
	}

	objs := genObjects(t, 50, 23)
	records := UnsplitRecords(objs)
	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := EncodeIndex(&buf, ppr); err != nil {
		t.Fatal(err)
	}
	image := buf.Bytes()

	// Truncations at every structural boundary and mid-section.
	for _, cut := range []int{0, 3, containerHeaderSize - 1, containerHeaderSize,
		containerHeaderSize + 4, len(image) / 2, len(image) - 1} {
		if _, err := DecodeIndex(bytes.NewReader(image[:cut])); err == nil {
			t.Fatalf("accepted a container truncated at %d of %d bytes", cut, len(image))
		}
		p := filepath.Join(dir, "trunc.sti")
		if err := os.WriteFile(p, image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if x, err := OpenIndex(p); err == nil {
			CloseIndex(x)
			t.Fatalf("opened a container truncated at %d of %d bytes", cut, len(image))
		}
	}

	// Unknown kind byte.
	bad := bytes.Clone(image)
	bad[8] = 42
	if _, err := DecodeIndex(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted an unknown index kind")
	}

	// Kind/extent mismatch: a hybrid header claims two extents but a ppr
	// image carries one.
	bad = bytes.Clone(image)
	bad[8] = 4
	if _, err := DecodeIndex(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted a hybrid header over a single-extent image")
	}

	// Unsupported container version.
	bad = bytes.Clone(image)
	bad[4] = 99
	if _, err := DecodeIndex(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted an unsupported container version")
	}

	// Absurd meta length must not pre-allocate or mis-parse.
	bad = bytes.Clone(image)
	for i := 12; i < 20; i++ {
		bad[i] = 0xff
	}
	if _, err := DecodeIndex(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted an absurd meta length")
	}
	p := filepath.Join(dir, "meta.sti")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if x, err := OpenIndex(p); err == nil {
		CloseIndex(x)
		t.Fatal("opened a container with an absurd meta length")
	}
}

// FuzzOpenIndex drives both container readers with mutated images. The
// property under test is "errors, not panics": any byte stream must
// either load into a queryable index or be rejected cleanly.
func FuzzOpenIndex(f *testing.F) {
	objs, err := GenerateRandom(RandomDatasetConfig{N: 40, Seed: 9})
	if err != nil {
		f.Fatal(err)
	}
	records := UnsplitRecords(objs)
	seed := func(x Index, err error) {
		if err != nil {
			f.Fatal(err)
		}
		for _, codec := range []Codec{CodecIdentity, CodecCompressed} {
			var buf bytes.Buffer
			if _, err := EncodeIndexOptions(&buf, x, SaveOptions{Codec: codec}); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	seed(BuildPPR(records, PPROptions{}))
	seed(BuildRStar(records, RStarOptions{ShuffleSeed: 5}))
	seed(BuildHR(records, HROptions{}))
	seed(BuildHybrid(records, HybridOptions{}))
	f.Add([]byte("STIC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if x, err := DecodeIndex(bytes.NewReader(data)); err == nil {
			_, _ = x.Snapshot(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}, 10)
			_, _ = x.Range(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Interval{Start: 0, End: 100})
		}
		path := filepath.Join(t.TempDir(), "fuzz.sti")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if x, err := OpenIndex(path); err == nil {
			_, _ = x.Snapshot(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}, 10)
			_, _ = x.Range(Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Interval{Start: 0, End: 100})
			CloseIndex(x)
		}
	})
}
