package stindex

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// TestStreamContainerMidflightResume encodes a stream index to a STIC
// container while objects are still live, decodes it eagerly, and keeps
// ingesting into the decoded copy. This is exactly the ingestion
// recovery path: snapshot + replayed WAL tail must land on the same
// state as the never-interrupted index.
func TestStreamContainerMidflightResume(t *testing.T) {
	for _, codec := range []Codec{CodecIdentity, CodecCompressed} {
		t.Run(string(codec), func(t *testing.T) {
			six, err := NewStreamIndex(StreamOptions{Lambda: 0.004}, 0)
			if err != nil {
				t.Fatal(err)
			}
			step := func(ix *StreamIndex, from, to int64) {
				t.Helper()
				for tm := from; tm < to; tm++ {
					for id := int64(1); id <= 25; id++ {
						// Every fifth object disappears at t=30; the rest
						// stay live across the encode point.
						if id%5 == 0 && tm >= 30 {
							if tm == 30 {
								if err := ix.Finish(id, tm); err != nil {
									t.Fatal(err)
								}
							}
							continue
						}
						x := 0.02*float64(id) + 0.005*float64(tm)
						y := 0.9 - 0.03*float64(id)
						r := Rect{MinX: x, MinY: y, MaxX: x + 0.01, MaxY: y + 0.01}
						if err := ix.Observe(id, tm, r); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			step(six, 0, 35)
			if six.Live() == 0 {
				t.Fatal("want live objects at the encode point")
			}

			var buf bytes.Buffer
			if _, err := EncodeIndexOptions(&buf, six, SaveOptions{Codec: codec}); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeIndex(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			resumed, ok := decoded.(*StreamIndex)
			if !ok {
				t.Fatalf("decoded kind %T, want *StreamIndex", decoded)
			}
			if resumed.Live() != six.Live() || resumed.Records() != six.Records() {
				t.Fatalf("decoded state: live %d/%d records %d/%d",
					resumed.Live(), six.Live(), resumed.Records(), six.Records())
			}
			if resumed.Now() != six.Now() {
				t.Fatalf("decoded clock %d, want %d", resumed.Now(), six.Now())
			}
			if resumed.Lambda() != six.Lambda() {
				t.Fatalf("decoded lambda %g, want %g", resumed.Lambda(), six.Lambda())
			}

			// Continue the evolution on both and finish everything.
			step(six, 35, 60)
			step(resumed, 35, 60)
			if err := six.FinishAll(61); err != nil {
				t.Fatal(err)
			}
			if err := resumed.FinishAll(61); err != nil {
				t.Fatalf("FinishAll on decoded mid-flight index: %v", err)
			}

			if resumed.Records() != six.Records() || resumed.Cuts() != six.Cuts() {
				t.Fatalf("continued state: records %d/%d cuts %d/%d",
					resumed.Records(), six.Records(), resumed.Cuts(), six.Cuts())
			}
			for i := 0; i < 20; i++ {
				q := Rect{MinX: 0.04 * float64(i), MinY: 0, MaxX: 0.04*float64(i) + 0.3, MaxY: 1}
				iv := Interval{Start: int64(i), End: int64(i) + 20}
				want, err := six.Range(q, iv)
				if err != nil {
					t.Fatal(err)
				}
				got, err := resumed.Range(q, iv)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Fatalf("query %d diverged: %v vs %v", i, want, got)
				}
			}
		})
	}
}
