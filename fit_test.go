package stindex

import (
	"sort"
	"testing"
)

func TestFitObjectFacade(t *testing.T) {
	// A raw GPS-style track: drift with jitter.
	raw := make([]Rect, 80)
	for i := range raw {
		x := 0.1 + float64(i)*0.005
		raw[i] = Rect{MinX: x, MinY: 0.4, MaxX: x + 0.01, MaxY: 0.41}
	}
	o, worst, err := FitObject(42, 100, raw, FitOptions{Tolerance: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.002 {
		t.Fatalf("worst deviation %g", worst)
	}
	if o.ID() != 42 || o.Len() != 80 || o.Lifetime().Start != 100 {
		t.Fatalf("fitted object header wrong: %d %d %v", o.ID(), o.Len(), o.Lifetime())
	}
	// The fitted object slots straight into the pipeline.
	records, rep, err := SplitDataset([]*Object{o}, SplitConfig{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || rep.Gain() <= 0 {
		t.Fatalf("pipeline over fitted object: %d records, gain %.2f", len(records), rep.Gain())
	}
	if _, _, err := FitObject(1, 0, nil, FitOptions{}); err == nil {
		t.Fatal("accepted empty track")
	}
}

func TestRefinedIndexRemovesFalsePositives(t *testing.T) {
	objs := genObjects(t, 400, 51)
	// Unsplit records have maximal dead space, so the raw index
	// over-reports heavily; refinement must cut results down to exact
	// geometry.
	records := UnsplitRecords(objs)
	base, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	refined := Refined(base, objs)

	queries, err := GenerateQueries(QuerySnapshotMixed, 1000, 53)
	if err != nil {
		t.Fatal(err)
	}
	sawFalsePositive := false
	for qi, q := range queries[:120] {
		rawIDs, err := RunQuery(base, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunQuery(refined, q)
		if err != nil {
			t.Fatal(err)
		}
		// Exact ground truth from object geometry.
		var want []int64
		for _, o := range objs {
			lt := o.Lifetime()
			for tm := max64(q.Interval.Start, lt.Start); tm < min64(q.Interval.End, lt.End); tm++ {
				if r, ok := o.At(tm); ok && r.Intersects(q.Rect) {
					want = append(want, o.ID())
					break
				}
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(sortedIDs(got), want) {
			t.Fatalf("query %d: refined %d results, exact %d", qi, len(got), len(want))
		}
		if len(rawIDs) > len(got) {
			sawFalsePositive = true
		}
	}
	if !sawFalsePositive {
		t.Fatal("expected the unsplit index to over-report at least once")
	}
	if refined.Kind() != "ppr+refine" {
		t.Fatalf("Kind = %q", refined.Kind())
	}
	if refined.Records() != base.Records() || refined.Pages() != base.Pages() {
		t.Fatal("refined accessors should delegate")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
