package stindex

import (
	"runtime"
	"testing"
)

// goldenWorkload builds the fixed dataset and indexes used to pin the
// workload I/O goldens: 1500 uniform objects split under a 1.5x budget,
// indexed three ways.
func goldenWorkload(t *testing.T) (ppr, rst, hr Index) {
	t.Helper()
	objs, err := GenerateRandom(RandomDatasetConfig{N: 1500, Horizon: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 2250})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildRStar(records, RStarOptions{ShuffleSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHR(records, HROptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p, r, h
}

func goldenQueries(t *testing.T, set QuerySet) []Query {
	t.Helper()
	qs, err := GenerateQueries(set, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	return qs[:200]
}

// TestWorkloadGoldenIO pins the exact AvgIO of the measurement pipeline on
// a fixed dataset. These values are a deterministic function of the tree
// layouts and the 10-page LRU policy; the decoded-node cache and the
// iterative traversals must not move them by even one disk access — any
// drift here means the paper's metric changed.
func TestWorkloadGoldenIO(t *testing.T) {
	ppr, rst, hr := goldenWorkload(t)
	golden := []struct {
		set       QuerySet
		idx       Index
		avgIO     float64
		avgResult float64
	}{
		{QuerySnapshotMixed, ppr, 3.445, 14.87},
		{QuerySnapshotMixed, rst, 10.44, 14.87},
		{QuerySnapshotMixed, hr, 2.855, 14.87},
		{QueryRangeSmall, ppr, 3.975, 15.425},
		{QueryRangeSmall, rst, 10.205, 15.425},
		{QueryRangeSmall, hr, 14.43, 15.425},
	}
	queries := map[QuerySet][]Query{
		QuerySnapshotMixed: goldenQueries(t, QuerySnapshotMixed),
		QueryRangeSmall:    goldenQueries(t, QueryRangeSmall),
	}
	for _, g := range golden {
		res, err := MeasureWorkload(g.idx, queries[g.set])
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgIO != g.avgIO || res.AvgResult != g.avgResult {
			t.Errorf("set=%s kind=%s: AvgIO=%v AvgResult=%v, want %v / %v",
				g.set, g.idx.Kind(), res.AvgIO, res.AvgResult, g.avgIO, g.avgResult)
		}
	}
}

// TestMeasureWorkloadParallelBitIdentical asserts the tentpole guarantee:
// for every worker count, MeasureWorkloadParallel returns exactly the
// serial result — same AvgIO, same AvgResult, same query count.
func TestMeasureWorkloadParallelBitIdentical(t *testing.T) {
	ppr, rst, hr := goldenWorkload(t)
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, set := range []QuerySet{QuerySnapshotMixed, QueryRangeSmall} {
		qs := goldenQueries(t, set)
		for _, idx := range []Index{ppr, rst, hr} {
			want, err := MeasureWorkload(idx, qs)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := MeasureWorkloadParallel(idx, qs, w)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("set=%s kind=%s workers=%d: %+v, want %+v", set, idx.Kind(), w, got, want)
				}
			}
		}
	}
}

// TestMeasureWorkloadParallelHybrid covers the composite index's view
// plumbing (two component trees per view).
func TestMeasureWorkloadParallelHybrid(t *testing.T) {
	objs, err := GenerateRandom(RandomDatasetConfig{N: 400, Horizon: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 600})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildHybrid(records, HybridOptions{RStar: RStarOptions{ShuffleSeed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	qs := goldenQueries(t, QueryRangeMedium)
	want, err := MeasureWorkload(idx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 0} {
		got, err := MeasureWorkloadParallel(idx, qs, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: %+v, want %+v", w, got, want)
		}
	}
}

// opaqueIndex hides the QueryViewer implementation, forcing the serial
// fallback path.
type opaqueIndex struct{ Index }

func TestMeasureWorkloadParallelFallback(t *testing.T) {
	ppr, _, _ := goldenWorkload(t)
	qs := goldenQueries(t, QuerySnapshotMixed)[:50]
	want, err := MeasureWorkload(ppr, qs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureWorkloadParallel(opaqueIndex{ppr}, qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback: %+v, want %+v", got, want)
	}
}
