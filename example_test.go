package stindex_test

import (
	"fmt"
	"log"

	stx "stindex"
)

// The basic pipeline: generate, split, index, query.
func ExampleSplitDataset() {
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	records, report, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 750})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objects=%d records=%d splits=%d\n", len(objs), len(records), report.UsedSplits)
	fmt.Printf("dead space removed: %.0f%%\n", 100*report.Gain())
	// Output:
	// objects=500 records=1250 splits=750
	// dead space removed: 68%
}

func ExampleBuildPPR() {
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 750})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := stx.BuildPPR(records, stx.PPROptions{})
	if err != nil {
		log.Fatal(err)
	}
	idx.ResetBuffer()
	ids, err := idx.Snapshot(stx.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objects in the window at t=500: %d\n", len(ids))
	fmt.Printf("disk accesses (cold 10-page buffer): %d\n", idx.IOStats().IO())
	// Output:
	// objects in the window at t=500: 23
	// disk accesses (cold 10-page buffer): 1
}

func ExampleNewObjectFromSegments() {
	// A point accelerating along x: x(t) = 0.1 + 0.001·t², constant y.
	o, err := stx.NewObjectFromSegments(7, []stx.Segment{{
		Start: 0, End: 20,
		X:     []float64{0.1, 0, 0.001},
		Y:     []float64{0.5},
		HalfW: []float64{0.01},
		HalfH: []float64{0.01},
	}})
	if err != nil {
		log.Fatal(err)
	}
	r0, _ := o.At(0)
	r10, _ := o.At(10)
	fmt.Printf("lifetime %v\n", o.Lifetime())
	fmt.Printf("center x at t=0: %.2f, at t=10: %.2f\n", (r0.MinX+r0.MaxX)/2, (r10.MinX+r10.MaxX)/2)
	// Output:
	// lifetime {0 20}
	// center x at t=0: 0.10, at t=10: 0.20
}

func ExampleHybridIndex() {
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: 400, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 600})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := stx.BuildHybrid(records, stx.HybridOptions{IntervalThreshold: 50})
	if err != nil {
		log.Fatal(err)
	}
	r := stx.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.4, MaxY: 0.4}

	idx.ResetBuffer()
	if _, err := idx.Range(r, stx.Interval{Start: 500, End: 510}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short interval went to: ppr=%v\n", idx.PPR().IOStats().Reads > 0)

	idx.ResetBuffer()
	if _, err := idx.Range(r, stx.Interval{Start: 100, End: 900}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long interval went to: rstar=%v\n", idx.RStar().IOStats().Reads > 0)
	// Output:
	// short interval went to: ppr=true
	// long interval went to: rstar=true
}

func ExampleNewStreamIndex() {
	ix, err := stx.NewStreamIndex(stx.StreamOptions{Lambda: 0.001}, 0)
	if err != nil {
		log.Fatal(err)
	}
	// A point object drifting right, one observation per instant.
	for t := int64(0); t < 30; t++ {
		x := 0.1 + float64(t)*0.02
		r := stx.Rect{MinX: x, MinY: 0.5, MaxX: x + 0.01, MaxY: 0.51}
		if err := ix.Observe(1, t, r); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Finish(1, 30); err != nil {
		log.Fatal(err)
	}
	// The past stays queryable: where was the object around t=5?
	ids, err := ix.Snapshot(stx.Rect{MinX: 0.15, MinY: 0.45, MaxX: 0.25, MaxY: 0.55}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d object, %d lifetime pieces\n", len(ids), ix.Records())
	// Output:
	// found 1 object, 10 lifetime pieces
}
