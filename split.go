package stindex

import (
	"fmt"

	"stindex/internal/alloc"
	"stindex/internal/split"
	"stindex/internal/trajectory"
)

// Splitter selects the single-object splitting algorithm (paper §III-A).
type Splitter string

// Single-object splitting algorithms.
const (
	// SplitterMerge is the O(n log n) greedy merging heuristic — the
	// recommended default: within a whisker of optimal at a fraction of
	// the cost (paper figures 11-12).
	SplitterMerge Splitter = "merge"
	// SplitterDP is the optimal O(n²k) dynamic program.
	SplitterDP Splitter = "dp"
)

// Distribution selects the split-budget distribution algorithm (§III-B).
type Distribution string

// Budget distribution algorithms.
const (
	// DistributionLAGreedy is the look-ahead-2 greedy — the recommended
	// default: matches the optimal distribution's query performance at
	// greedy cost (paper figures 13-14).
	DistributionLAGreedy Distribution = "lagreedy"
	// DistributionGreedy is the plain one-split-at-a-time greedy.
	DistributionGreedy Distribution = "greedy"
	// DistributionOptimal is the O(N·K²) dynamic program.
	DistributionOptimal Distribution = "optimal"
)

// SplitConfig controls SplitDataset.
type SplitConfig struct {
	// Budget is the total number of artificial splits to distribute over
	// the collection. The paper's sweet spot is 1.5× the object count
	// ("150% splits"); see ChooseBudget for automatic selection.
	Budget int
	// Splitter is the single-object algorithm. Default SplitterMerge.
	Splitter Splitter
	// Distribution is the budget distribution algorithm. Default
	// DistributionLAGreedy.
	Distribution Distribution
	// LookaheadDepth tunes DistributionLAGreedy; 0 means the paper's 2.
	LookaheadDepth int
	// Parallelism is the worker count for the embarrassingly parallel
	// stages — per-object curve construction and record materialization.
	// 0 selects GOMAXPROCS, 1 forces the serial path. Records and report
	// are bit-identical for every setting; only wall clock changes. (The
	// distribution step itself is inherently sequential and always runs
	// on one core.)
	Parallelism int
	// QueryAware switches the splitting objective from the paper's §III
	// total volume to its §IV "ultimate goal": the expected query cost
	// under the given window profile. Records are chosen to minimise
	// Σ (w+qx)(h+qy)·duration instead of Σ w·h·duration — equivalently,
	// volume plus a query-extent-weighted margin term (Pagel's formula at
	// the record level). Tiny extents recover the volume objective; wider
	// extents shift the optimum toward cuts that shrink record perimeter,
	// not just area. With the exact optimisers (SplitterDP +
	// DistributionOptimal) the resulting record set dominates the
	// volume-optimal one under the query objective by construction.
	QueryAware *QueryProfile
}

// SplitReport describes what SplitDataset did.
type SplitReport struct {
	Records      int     // resulting MBR records
	UsedSplits   int     // splits actually consumed
	TotalVolume  float64 // volume after splitting
	UnsplitTotal float64 // volume of the single-MBR representation
}

// Gain returns the fraction of dead space removed, in [0,1].
func (r SplitReport) Gain() float64 {
	if r.UnsplitTotal == 0 {
		return 0
	}
	return 1 - r.TotalVolume/r.UnsplitTotal
}

func (c SplitConfig) splitterFuncs() (alloc.CurveFunc, alloc.Splitter, error) {
	if c.QueryAware != nil {
		q := c.QueryAware
		if q.ExtentX < 0 || q.ExtentY < 0 {
			return nil, nil, fmt.Errorf("stindex: negative query extents in QueryAware profile")
		}
		m := split.QueryCostMeasure(q.ExtentX, q.ExtentY)
		switch c.Splitter {
		case SplitterMerge, "":
			return split.QueryAwareCurve(m), split.QueryAwareSplitter(m), nil
		case SplitterDP:
			return func(o *trajectory.Object, maxSplits int) []float64 {
					return split.DPCurveMeasure(o, maxSplits, m)
				}, func(o *trajectory.Object, k int) split.Result {
					return split.DPSplitMeasure(o, k, m)
				}, nil
		default:
			return nil, nil, fmt.Errorf("stindex: unknown splitter %q", c.Splitter)
		}
	}
	switch c.Splitter {
	case SplitterMerge, "":
		return split.MergeCurve, split.MergeSplit, nil
	case SplitterDP:
		return split.DPCurve, split.DPSplit, nil
	default:
		return nil, nil, fmt.Errorf("stindex: unknown splitter %q", c.Splitter)
	}
}

// SplitDataset splits a collection of objects under a global budget and
// returns the resulting MBR records (several per split object, all
// carrying the object's ID) together with a report.
func SplitDataset(objs []*Object, cfg SplitConfig) ([]Record, SplitReport, error) {
	records, rep, _, err := splitDataset(innerObjects(objs), cfg)
	return records, rep, err
}

// splitDataset is the internal-type version shared with the experiment
// harness.
func splitDataset(objs []*trajectory.Object, cfg SplitConfig) ([]Record, SplitReport, alloc.Assignment, error) {
	var rep SplitReport
	curveFn, splitter, err := cfg.splitterFuncs()
	if err != nil {
		return nil, rep, alloc.Assignment{}, err
	}
	if cfg.Budget < 0 {
		return nil, rep, alloc.Assignment{}, fmt.Errorf("stindex: negative split budget %d", cfg.Budget)
	}
	curves := alloc.BuildCurvesParallel(objs, curveFn, cfg.Parallelism)
	var a alloc.Assignment
	switch cfg.Distribution {
	case DistributionLAGreedy, "":
		depth := cfg.LookaheadDepth
		if depth == 0 {
			depth = 2
		}
		a = alloc.LAGreedyDepth(curves, cfg.Budget, depth)
	case DistributionGreedy:
		a = alloc.Greedy(curves, cfg.Budget)
	case DistributionOptimal:
		a = alloc.Optimal(curves, cfg.Budget)
	default:
		return nil, rep, a, fmt.Errorf("stindex: unknown distribution %q", cfg.Distribution)
	}

	results := alloc.MaterializeParallel(objs, a, splitter, cfg.Parallelism)
	records := flattenResults(results)
	for _, o := range objs {
		rep.UnsplitTotal += o.MBR().Volume()
	}
	rep.Records = len(records)
	rep.UsedSplits = a.Used()
	rep.TotalVolume = TotalVolume(records)
	return records, rep, a, nil
}

func flattenResults(results []split.Result) []Record {
	var records []Record
	for _, r := range results {
		for _, b := range r.Boxes {
			records = append(records, Record{
				Rect:     fromGeomRect(b.Rect),
				Interval: Interval{Start: b.Start, End: b.End},
				ObjectID: r.Object.ID,
			})
		}
	}
	return records
}

// UnsplitRecords returns the single-MBR representation of each object —
// the "no splits" baseline.
func UnsplitRecords(objs []*Object) []Record {
	records := make([]Record, len(objs))
	for i, o := range objs {
		records[i] = o.MBR()
	}
	return records
}

// PiecewiseRecords splits every object at the instants where its motion
// changes characteristics — the piecewise baseline of [21] that the paper
// shows is *worse* than not splitting at all (figures 17-18).
func PiecewiseRecords(objs []*Object) []Record {
	var results []split.Result
	for _, o := range objs {
		results = append(results, split.Piecewise(o.inner))
	}
	return flattenResults(results)
}
