package stindex

import "testing"

func TestHybridMatchesComponents(t *testing.T) {
	objs := genObjects(t, 400, 11)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 600})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := BuildHybrid(records, HybridOptions{IntervalThreshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Rect: Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}, Interval: Interval{Start: 500, End: 501}},  // snapshot
		{Rect: Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}, Interval: Interval{Start: 500, End: 515}},  // short
		{Rect: Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}, Interval: Interval{Start: 400, End: 700}},  // long
		{Rect: Rect{MinX: 0.0, MinY: 0.0, MaxX: 0.05, MaxY: 0.05}, Interval: Interval{Start: 0, End: 1000}}, // whole horizon
	}
	for qi, q := range queries {
		want := bruteQuery(records, q)
		got, err := RunQuery(hyb, q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if !equalIDs(sortedIDs(got), want) {
			t.Fatalf("query %d: hybrid returned %d objects, brute force %d", qi, len(got), len(want))
		}
	}
}

func TestHybridRouting(t *testing.T) {
	objs := genObjects(t, 300, 12)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := BuildHybrid(records, HybridOptions{IntervalThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.5, MaxY: 0.5}

	// A short query must only touch the PPR component.
	hyb.ResetBuffer()
	if _, err := hyb.Range(r, Interval{Start: 500, End: 505}); err != nil {
		t.Fatal(err)
	}
	if hyb.RStar().IOStats().Reads != 0 {
		t.Fatal("short query leaked into the R*-tree")
	}
	if hyb.PPR().IOStats().Reads == 0 {
		t.Fatal("short query did not touch the PPR-tree")
	}

	// A long query must only touch the R* component.
	hyb.ResetBuffer()
	if _, err := hyb.Range(r, Interval{Start: 100, End: 900}); err != nil {
		t.Fatal(err)
	}
	if hyb.PPR().IOStats().Reads != 0 {
		t.Fatal("long query leaked into the PPR-tree")
	}
	if hyb.RStar().IOStats().Reads == 0 {
		t.Fatal("long query did not touch the R*-tree")
	}

	// Combined accounting.
	if hyb.Pages() != hyb.PPR().Pages()+hyb.RStar().Pages() {
		t.Fatal("Pages should sum components")
	}
	if hyb.Records() != len(records) {
		t.Fatalf("Records = %d, want %d", hyb.Records(), len(records))
	}
	if hyb.Kind() != "hybrid" {
		t.Fatalf("Kind = %q", hyb.Kind())
	}
	if _, err := BuildHybrid(records, HybridOptions{IntervalThreshold: -1}); err == nil {
		t.Fatal("accepted negative threshold")
	}
}

func TestHRIndexMatchesBruteForce(t *testing.T) {
	objs := genObjects(t, 300, 14)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := BuildHR(records, HROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hr.Tree().Validate(); err != nil {
		t.Fatalf("HR tree invalid: %v", err)
	}
	queries, err := GenerateQueries(QueryRangeSmall, 1000, 15)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:60] {
		want := bruteQuery(records, q)
		got, err := RunQuery(hr, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), want) {
			t.Fatalf("query %d: hr returned %d objects, brute force %d", qi, len(got), len(want))
		}
	}
	// The overlapping structure's storage dwarfs the multi-version one's.
	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hr.Pages() < ppr.Pages()*3 {
		t.Fatalf("HR %d pages vs PPR %d — expected the overlapping blowup", hr.Pages(), ppr.Pages())
	}
	if hr.Kind() != "hr" || hr.Records() != len(records) {
		t.Fatal("HR accessors wrong")
	}
	if _, err := BuildHR(nil, HROptions{}); err == nil {
		t.Fatal("accepted empty records")
	}
}

func TestStreamIndexFacade(t *testing.T) {
	objs := genObjects(t, 120, 13)
	lambda, err := CalibrateLambda(objs[:40], 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if lambda < 0 {
		t.Fatalf("lambda = %g", lambda)
	}
	six, err := NewStreamIndex(StreamOptions{Lambda: lambda}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the objects in time order.
	type ev struct {
		t     int64
		obj   int
		final bool
	}
	var events []ev
	for i, o := range objs {
		lt := o.Lifetime()
		for tm := lt.Start; tm < lt.End; tm++ {
			events = append(events, ev{t: tm, obj: i})
		}
		events = append(events, ev{t: lt.End, obj: i, final: true})
	}
	sortEvents := func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].final && !events[b].final
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && sortEvents(j, j-1); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	for _, e := range events {
		o := objs[e.obj]
		if e.final {
			if err := six.Finish(o.ID(), e.t); err != nil {
				t.Fatal(err)
			}
			continue
		}
		r, _ := o.At(e.t)
		if err := six.Observe(o.ID(), e.t, r); err != nil {
			t.Fatal(err)
		}
	}
	if six.Live() != 0 {
		t.Fatalf("%d live objects after replay", six.Live())
	}
	if six.Records() < len(objs) {
		t.Fatalf("only %d records for %d objects", six.Records(), len(objs))
	}

	// No false negatives against true geometry.
	six.ResetBuffer()
	q := Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	got, err := six.Snapshot(q, 500)
	if err != nil {
		t.Fatal(err)
	}
	gotSet := make(map[int64]bool)
	for _, id := range got {
		gotSet[id] = true
	}
	for _, o := range objs {
		if r, ok := o.At(500); ok && r.Intersects(q) && !gotSet[o.ID()] {
			t.Fatalf("object %d missing from streaming snapshot", o.ID())
		}
	}
	if six.IOStats().Reads == 0 {
		t.Fatal("snapshot performed no reads")
	}
	if six.Pages() == 0 || six.Bytes() == 0 {
		t.Fatal("empty footprint")
	}
	if six.Kind() != "stream-ppr" {
		t.Fatalf("Kind = %q", six.Kind())
	}

	if _, err := CalibrateLambda(nil, 2); err == nil {
		t.Fatal("accepted empty calibration sample")
	}
}
