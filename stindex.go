// Package stindex indexes historical spatiotemporal objects — objects that
// move and change extent over time with arbitrary (general) motion — for
// snapshot and small-interval window queries, implementing the splitting
// framework of Hadjieleftheriou, Kollios, Gunopulos and Tsotras,
// "Efficient Indexing of Spatiotemporal Objects" (EDBT 2002).
//
// The pipeline has three stages:
//
//  1. Represent each object as a sequence of per-instant rectangles
//     (NewObject / NewObjectFromSegments, or the built-in generators
//     GenerateRandom / GenerateRailway).
//  2. Split the objects' lifetimes into consecutive MBR records under a
//     global split budget (SplitDataset), trading a little storage for a
//     large reduction in dead space. ChooseBudget picks a good budget
//     automatically.
//  3. Index the records with a partially persistent R-tree (BuildPPR) —
//     or, as the baseline the paper compares against, a 3-dimensional
//     R*-tree (BuildRStar) — and run Snapshot or Range queries with exact
//     disk-access accounting.
//
// Example:
//
//	objs, _ := stindex.GenerateRandom(stindex.RandomDatasetConfig{N: 1000, Seed: 1})
//	recs, _ := stindex.SplitDataset(objs, stindex.SplitConfig{Budget: 1500})
//	idx, _ := stindex.BuildPPR(recs, stindex.PPROptions{})
//	ids, _ := idx.Snapshot(stindex.Rect{MinX: .4, MinY: .4, MaxX: .6, MaxY: .6}, 500)
package stindex

import (
	"fmt"
	"math"

	"stindex/internal/geom"
	"stindex/internal/trajectory"
)

// Now marks a still-open deletion time in intervals.
const Now = geom.Now

// Rect is an axis-parallel rectangle in the unit square [0,1]².
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.internal().Area() }

// Intersects reports whether two rectangles share a point.
func (r Rect) Intersects(o Rect) bool { return r.internal().Intersects(o.internal()) }

func (r Rect) internal() geom.Rect {
	return geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func fromGeomRect(r geom.Rect) Rect {
	return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// Interval is a half-open discrete time interval [Start, End).
type Interval struct {
	Start, End int64
}

// Contains reports whether instant t lies in the interval.
func (iv Interval) Contains(t int64) bool { return iv.Start <= t && t < iv.End }

func (iv Interval) internal() geom.Interval { return geom.Interval{Start: iv.Start, End: iv.End} }

// Record is one indexed MBR: a rectangle covering a consecutive slice of
// one object's lifetime. Splitting an object produces several records
// sharing its ObjectID.
type Record struct {
	Rect     Rect
	Interval Interval
	ObjectID int64
}

// Volume returns the record's space-time volume (area × duration).
func (r Record) Volume() float64 {
	return r.Rect.Area() * float64(r.Interval.End-r.Interval.Start)
}

// Object is a spatiotemporal object: the rectangle it occupied at each
// discrete instant of its lifetime.
type Object struct {
	inner *trajectory.Object
}

// NewObject builds an object directly from per-instant rectangles;
// rects[i] is the object's MBR at time start+i.
func NewObject(id, start int64, rects []Rect) (*Object, error) {
	rs := make([]geom.Rect, len(rects))
	for i, r := range rects {
		rs[i] = r.internal()
	}
	o, err := trajectory.NewObject(id, start, rs)
	if err != nil {
		return nil, err
	}
	return &Object{inner: o}, nil
}

// Segment describes one piece of a piecewise-polynomial motion (§II-A of
// the paper) over [Start, End): the object's center follows
// (X(t-Start), Y(t-Start)) and its half-extents (HalfW, HalfH), each a
// polynomial given by ascending-degree coefficients.
type Segment struct {
	Start, End   int64
	X, Y         []float64
	HalfW, HalfH []float64
}

// NewObjectFromSegments rasterises a piecewise-polynomial motion into an
// Object. Segments must be contiguous in time.
func NewObjectFromSegments(id int64, segs []Segment) (*Object, error) {
	ts := make([]trajectory.Segment, len(segs))
	for i, s := range segs {
		ts[i] = trajectory.Segment{
			Start: s.Start, End: s.End,
			X:     trajectory.NewPolynomial(s.X...),
			Y:     trajectory.NewPolynomial(s.Y...),
			HalfW: trajectory.NewPolynomial(s.HalfW...),
			HalfH: trajectory.NewPolynomial(s.HalfH...),
		}
	}
	o, err := trajectory.FromSegments(id, ts)
	if err != nil {
		return nil, err
	}
	return &Object{inner: o}, nil
}

// ID returns the object identifier.
func (o *Object) ID() int64 { return o.inner.ID }

// Lifetime returns the object's lifetime interval.
func (o *Object) Lifetime() Interval {
	iv := o.inner.Lifetime()
	return Interval{Start: iv.Start, End: iv.End}
}

// Len returns the number of instants the object is alive.
func (o *Object) Len() int { return o.inner.Len() }

// At returns the object's rectangle at absolute time t; ok is false
// outside the lifetime.
func (o *Object) At(t int64) (r Rect, ok bool) {
	if !o.inner.Lifetime().ContainsInstant(t) {
		return Rect{}, false
	}
	return fromGeomRect(o.inner.At(t)), true
}

// MBR returns the single bounding record of the whole object (the
// "no splits" representation).
func (o *Object) MBR() Record {
	b := o.inner.MBR()
	return Record{Rect: fromGeomRect(b.Rect), Interval: Interval{Start: b.Start, End: b.End}, ObjectID: o.inner.ID}
}

func innerObjects(objs []*Object) []*trajectory.Object {
	out := make([]*trajectory.Object, len(objs))
	for i, o := range objs {
		out[i] = o.inner
	}
	return out
}

// TotalVolume sums the volumes of a record set — the quantity the split
// algorithms minimise.
func TotalVolume(records []Record) float64 {
	t := 0.0
	for _, r := range records {
		t += r.Volume()
	}
	return t
}

// Horizon returns the smallest half-open interval covering every object's
// lifetime, or an error for an empty collection.
func Horizon(objs []*Object) (Interval, error) {
	if len(objs) == 0 {
		return Interval{}, fmt.Errorf("stindex: empty object collection")
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, o := range objs {
		if o.inner.Start() < lo {
			lo = o.inner.Start()
		}
		if o.inner.End() > hi {
			hi = o.inner.End()
		}
	}
	return Interval{Start: lo, End: hi}, nil
}
