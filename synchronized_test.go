package stindex

import (
	"sync"
	"testing"
)

func TestSynchronizedConcurrentQueries(t *testing.T) {
	objs := genObjects(t, 400, 41)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 600})
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	idx := Synchronized(base)

	queries, err := GenerateQueries(QuerySnapshotMixed, 1000, 43)
	if err != nil {
		t.Fatal(err)
	}
	queries = queries[:200]

	// Sequential ground truth.
	want := make([][]int64, len(queries))
	for i, q := range queries {
		ids, _, err := idx.Measure(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sortedIDs(ids)
	}

	// Hammer the same workload from many goroutines; results must match
	// and (under -race) no data race may be reported.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 8 {
				ids, _, err := idx.Measure(queries[i])
				if err != nil {
					errs <- err
					return
				}
				got := sortedIDs(ids)
				if !equalIDs(got, want[i]) {
					errs <- errMismatch(i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if idx.Kind() != "ppr" || idx.Records() != len(records) {
		t.Fatal("wrapper accessor mismatch")
	}
	if idx.Pages() != base.Pages() || idx.Bytes() != base.Bytes() {
		t.Fatal("wrapper footprint mismatch")
	}
}

type errMismatch int

func (e errMismatch) Error() string { return "concurrent query result mismatch" }
