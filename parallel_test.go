package stindex

import (
	"reflect"
	"runtime"
	"testing"
)

// TestSplitDatasetParallelismIdentical asserts the facade-level
// determinism guarantee: SplitDataset returns bit-identical records and
// report for every Parallelism setting, across splitters, distributions
// and the query-aware objective.
func TestSplitDatasetParallelismIdentical(t *testing.T) {
	objs, err := GenerateRandom(RandomDatasetConfig{N: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	configs := []SplitConfig{
		{Budget: 600},
		{Budget: 600, Splitter: SplitterDP, Distribution: DistributionOptimal},
		{Budget: 600, QueryAware: &QueryProfile{ExtentX: 0.01, ExtentY: 0.01}},
	}
	for ci, cfg := range configs {
		cfg.Parallelism = 1
		wantRecs, wantRep, err := SplitDataset(objs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, runtime.NumCPU(), 0} {
			cfg.Parallelism = workers
			gotRecs, gotRep, err := SplitDataset(objs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantRecs, gotRecs) {
				t.Fatalf("config %d: records differ between Parallelism=1 and %d", ci, workers)
			}
			if wantRep != gotRep {
				t.Fatalf("config %d: report differs: %+v vs %+v", ci, wantRep, gotRep)
			}
		}
	}
}

// TestChooseBudgetParallelismIdentical asserts the analytical budget
// chooser picks the same budget and prediction table regardless of the
// worker count.
func TestChooseBudgetParallelismIdentical(t *testing.T) {
	objs, err := GenerateRandom(RandomDatasetConfig{N: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, wantTable, err := ChooseBudget(objs, ChooseBudgetConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 0} {
		got, gotTable, err := ChooseBudget(objs, ChooseBudgetConfig{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want || !reflect.DeepEqual(wantTable, gotTable) {
			t.Fatalf("Parallelism=%d chose %+v, serial chose %+v", workers, got, want)
		}
	}
}
