package stindex

import (
	"fmt"
	"sort"

	"stindex/internal/geom"
	"stindex/internal/hrtree"
	"stindex/internal/pprtree"
)

// HROptions configures BuildHR. Zero values mirror the paper's setup.
type HROptions struct {
	MaxEntries  int
	MinEntries  int
	PageSize    int
	BufferPages int
	// Backend selects where the tree's pages live (memory or disk).
	Backend Backend
}

// HRIndex is an overlapping (historical) R-tree over the record set — the
// other classic road to partial persistence (the paper's reference [17],
// built on the overlapping idea of [4]): one logical R-tree per time
// instant, unchanged branches shared between consecutive versions.
//
// The paper's related work (citing [24]) notes this approach pays a
// logarithmic storage overhead per update and probes one tree per version
// for interval queries; BuildHR exists so those costs can be measured
// against the PPR-tree (`stbench -exp overlap`).
type HRIndex struct {
	tree   *hrtree.Tree
	owners []int64
	closer fileHandle // see PPRIndex.closer
}

// BuildHR indexes the records with an overlapping R-tree, replaying their
// insertions and deletions chronologically.
func BuildHR(records []Record, opts HROptions) (*HRIndex, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("stindex: no records to index")
	}
	recs := make([]pprtree.Record, len(records))
	owners := make([]int64, len(records))
	for i, r := range records {
		recs[i] = pprtree.Record{Rect: r.Rect.internal(), Interval: r.Interval.internal(), Ref: uint64(i)}
		owners[i] = r.ObjectID
	}
	tree, err := buildHRFromRecords(hrtree.Options{
		MaxEntries:  opts.MaxEntries,
		MinEntries:  opts.MinEntries,
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		Backend:     opts.Backend.internal(),
	}, recs)
	if err != nil {
		return nil, err
	}
	return &HRIndex{tree: tree, owners: owners}, nil
}

// buildHRFromRecords replays records in chronological order (deletions
// first within an instant), the same discipline as the PPR build.
func buildHRFromRecords(opts hrtree.Options, records []pprtree.Record) (*hrtree.Tree, error) {
	type event struct {
		time   int64
		insert bool
		rec    int
	}
	events := make([]event, 0, 2*len(records))
	for i, r := range records {
		if !r.Rect.Valid() || !r.Interval.ValidInterval() {
			return nil, fmt.Errorf("stindex: record %d invalid", i)
		}
		events = append(events, event{time: r.Interval.Start, insert: true, rec: i})
		if r.Interval.End != Now {
			events = append(events, event{time: r.Interval.End, insert: false, rec: i})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].time != events[b].time {
			return events[a].time < events[b].time
		}
		return !events[a].insert && events[b].insert
	})
	start := int64(0)
	if len(events) > 0 {
		start = events[0].time
	}
	tree, err := hrtree.New(opts, start)
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		r := records[ev.rec]
		if ev.insert {
			if err := tree.Insert(r.Rect, r.Ref, ev.time); err != nil {
				return nil, err
			}
			continue
		}
		ok, err := tree.Delete(r.Rect, r.Ref, ev.time)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("stindex: record %d vanished before its deletion", ev.rec)
		}
	}
	return tree, nil
}

// Snapshot implements Index.
func (x *HRIndex) Snapshot(r Rect, t int64) ([]int64, error) {
	var out []int64
	var cbErr error
	seen := make(map[int64]bool)
	err := x.tree.SnapshotSearch(r.internal(), t, func(_ geom.Rect, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "hr")
		if err != nil {
			cbErr = err
			return false
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
		return true
	})
	if err == nil {
		err = cbErr
	}
	return out, err
}

// Range implements Index.
func (x *HRIndex) Range(r Rect, iv Interval) ([]int64, error) {
	var out []int64
	var cbErr error
	seen := make(map[int64]bool)
	err := x.tree.IntervalSearch(r.internal(), iv.internal(), func(_ geom.Rect, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "hr")
		if err != nil {
			cbErr = err
			return false
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
		return true
	})
	if err == nil {
		err = cbErr
	}
	return out, err
}

// Nearest implements Index: branch-and-bound best-first search over the
// tree version at t (see hrtree.NearestSearch).
func (x *HRIndex) Nearest(px, py float64, t int64, k int) ([]Neighbor, error) {
	if err := ValidateKNN(px, py, k); err != nil {
		return nil, err
	}
	col := knnCollector{k: k}
	var cbErr error
	err := x.tree.NearestSearch(px, py, t, func(d2 float64, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "hr")
		if err != nil {
			cbErr = err
			return false
		}
		return col.add(d2, id)
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return col.nb, nil
}

// Trajectory implements Index: the interval search reports each record
// once across version copies, so counting refs per owner yields the
// multi-entry trajectory answer.
func (x *HRIndex) Trajectory(r Rect, iv Interval) ([]TrajectoryHit, error) {
	counts := make(map[int64]int)
	var cbErr error
	err := x.tree.IntervalSearch(r.internal(), iv.internal(), func(_ geom.Rect, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "hr")
		if err != nil {
			cbErr = err
			return false
		}
		counts[id]++
		return true
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return trajectoryHits(counts), nil
}

// ResetBuffer implements Index.
func (x *HRIndex) ResetBuffer() { x.tree.Buffer().Reset() }

// IOStats implements Index.
func (x *HRIndex) IOStats() IOStats {
	s := x.tree.Buffer().Stats()
	return IOStats{Reads: s.Reads, Writes: s.Writes, Hits: s.Hits}
}

// Pages implements Index.
func (x *HRIndex) Pages() int { return x.tree.Store().NumPages() }

// Bytes implements Index.
func (x *HRIndex) Bytes() int64 { return x.tree.Store().Bytes() }

// Records implements Index.
func (x *HRIndex) Records() int { return len(x.owners) }

// Kind implements Index.
func (x *HRIndex) Kind() string { return "hr" }

// Close releases the container file of a lazily opened index; see
// (*PPRIndex).Close. Idempotent, safe for concurrent callers.
func (x *HRIndex) Close() error { return x.closer.close() }

// Tree exposes the underlying overlapping R-tree.
func (x *HRIndex) Tree() *hrtree.Tree { return x.tree }

// QueryView implements QueryViewer: a read-only view with its own buffer
// pool over the shared page file, for concurrent query measurement.
func (x *HRIndex) QueryView() Index {
	return &HRIndex{tree: x.tree.QueryView(), owners: x.owners}
}

var _ Index = (*HRIndex)(nil)
