// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results). Each benchmark runs the corresponding experiment driver at a
// reduced default scale and reports the figure's headline quantity as a
// custom metric; `go test -bench . -benchmem` therefore reproduces the
// whole evaluation. Full published scale: cmd/stbench -full.
package stindex_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	stx "stindex"

	"stindex/internal/alloc"
	"stindex/internal/datagen"
	"stindex/internal/experiments"
	"stindex/internal/split"
)

// benchConfig keeps each figure's bench in the seconds range.
func benchConfig() experiments.Config {
	return experiments.Config{Sizes: []int{400, 800, 1600}, Queries: 200, Seed: 1}
}

func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2QuerySets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SplitCPU(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ratio = float64(last.DPTime) / float64(last.MergeTime)
	}
	b.ReportMetric(ratio, "dp/merge-cpu-ratio")
}

func BenchmarkFig12SplitVolume(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{400, 800}
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		overhead = 100 * (last.MergeVolume/last.DPVolume - 1)
	}
	b.ReportMetric(overhead, "merge-overhead-%")
}

func BenchmarkFig13DistributionCPU(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ratio = float64(last.OptimalTime) / float64(last.GreedyTime)
	}
	b.ReportMetric(ratio, "optimal/greedy-cpu-ratio")
}

func BenchmarkFig14DistributionIO(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{800}
	var la, greedy float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		la, greedy = rows[0].LAIO, rows[0].GreedyIO
	}
	b.ReportMetric(la, "lagreedy-avg-io")
	b.ReportMetric(greedy, "greedy-avg-io")
}

func BenchmarkFig15SplitSweep(b *testing.B) {
	cfg := benchConfig()
	var pprGain, rstarLoss float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		pprGain = 100 * (1 - last.PPRIO/first.PPRIO)
		rstarLoss = 100 * (last.RStarIO/first.RStarIO - 1)
	}
	b.ReportMetric(pprGain, "ppr-io-gain-%")
	b.ReportMetric(rstarLoss, "rstar-io-loss-%")
}

func BenchmarkFig16Space(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ratio = float64(last.PPRPages) / float64(last.RStarPages)
	}
	b.ReportMetric(ratio, "ppr/rstar-space-ratio")
}

func BenchmarkFig17SmallRange(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{800, 1600}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig17(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		speedup = last.RStar1 / last.PPR150
	}
	b.ReportMetric(speedup, "ppr-vs-rstar-speedup")
}

func BenchmarkFig18MixedSnapshot(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{800, 1600}
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig18(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		speedup = last.RStar1 / last.PPR150
	}
	b.ReportMetric(speedup, "ppr-vs-rstar-speedup")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

func benchObjects(b *testing.B, n int) []*stx.Object {
	b.Helper()
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: n, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return objs
}

// BenchmarkAblationMergeHeap compares MergeSplit's lazy-invalidation heap
// against the O(n²) rescanning reference implementation.
func BenchmarkAblationMergeHeap(b *testing.B) {
	objs, err := datagen.Random(datagen.RandomConfig{N: 200, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range objs {
				split.MergeSplit(o, o.Len()/2)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, o := range objs {
				split.MergeSplitNaive(o, o.Len()/2)
			}
		}
	})
}

// BenchmarkAblationLookahead sweeps the LAGreedy look-ahead depth,
// reporting the volume each depth reaches (depth 2 is the paper's).
func BenchmarkAblationLookahead(b *testing.B) {
	objs, err := datagen.Random(datagen.RandomConfig{N: 1000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	curves := alloc.BuildCurves(objs, split.MergeCurve)
	budget := 1500
	for _, depth := range []int{1, 2, 3, 4} {
		depth := depth
		b.Run(map[int]string{1: "depth1", 2: "depth2", 3: "depth3", 4: "depth4"}[depth], func(b *testing.B) {
			var vol float64
			for i := 0; i < b.N; i++ {
				vol = alloc.LAGreedyDepth(curves, budget, depth).Volume
			}
			b.ReportMetric(vol, "total-volume")
		})
	}
}

// BenchmarkAblationVersionParams sweeps the PPR-tree's strong version
// overflow/underflow parameters around the paper's values and reports the
// query cost and space of each setting.
func BenchmarkAblationVersionParams(b *testing.B) {
	objs := benchObjects(b, 800)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1200})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := stx.GenerateQueries(stx.QuerySnapshotMixed, 1000, 9)
	if err != nil {
		b.Fatal(err)
	}
	queries = queries[:150]
	for _, p := range []struct {
		name     string
		svo, svu float64
	}{
		{"paper-0.8-0.4", 0.8, 0.4},
		{"tight-0.9-0.3", 0.9, 0.3},
		{"loose-0.7-0.5", 0.7, 0.5},
	} {
		p := p
		b.Run(p.name, func(b *testing.B) {
			var avgIO float64
			var pages int
			for i := 0; i < b.N; i++ {
				idx, err := stx.BuildPPR(records, stx.PPROptions{PSvo: p.svo, PSvu: p.svu})
				if err != nil {
					b.Fatal(err)
				}
				res, err := stx.MeasureWorkload(idx, queries)
				if err != nil {
					b.Fatal(err)
				}
				avgIO = res.AvgIO
				pages = idx.Pages()
			}
			b.ReportMetric(avgIO, "avg-io")
			b.ReportMetric(float64(pages), "pages")
		})
	}
}

// BenchmarkAblationBufferSize shows how the measured I/O depends on the
// LRU pool size (the paper fixes 10 pages).
func BenchmarkAblationBufferSize(b *testing.B) {
	objs := benchObjects(b, 800)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1200})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := stx.GenerateQueries(stx.QueryRangeSmall, 1000, 11)
	if err != nil {
		b.Fatal(err)
	}
	queries = queries[:150]
	for _, pages := range []int{1, 10, 50} {
		pages := pages
		b.Run(map[int]string{1: "buf1", 10: "buf10", 50: "buf50"}[pages], func(b *testing.B) {
			idx, err := stx.BuildPPR(records, stx.PPROptions{BufferPages: pages})
			if err != nil {
				b.Fatal(err)
			}
			var avgIO float64
			for i := 0; i < b.N; i++ {
				res, err := stx.MeasureWorkload(idx, queries)
				if err != nil {
					b.Fatal(err)
				}
				avgIO = res.AvgIO
			}
			b.ReportMetric(avgIO, "avg-io")
		})
	}
}

// BenchmarkAblationTimeScale compares the paper's unit-scaled time axis
// for the 3D R*-tree against an unscaled axis (time in raw instants),
// which bloats the time dimension and degrades the spatial split quality.
func BenchmarkAblationTimeScale(b *testing.B) {
	objs := benchObjects(b, 800)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 8})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := stx.GenerateQueries(stx.QueryRangeSmall, 1000, 13)
	if err != nil {
		b.Fatal(err)
	}
	queries = queries[:150]
	for _, c := range []struct {
		name  string
		scale float64
	}{
		{"unit-scaled", 0},  // default: horizon -> [0,1]
		{"raw-instants", 1}, // one unit per instant
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			idx, err := stx.BuildRStar(records, stx.RStarOptions{TimeScale: c.scale, ShuffleSeed: 42})
			if err != nil {
				b.Fatal(err)
			}
			var avgIO float64
			for i := 0; i < b.N; i++ {
				res, err := stx.MeasureWorkload(idx, queries)
				if err != nil {
					b.Fatal(err)
				}
				avgIO = res.AvgIO
			}
			b.ReportMetric(avgIO, "avg-io")
		})
	}
}

// BenchmarkAblationObjective compares the §III volume objective against
// the §IV query-cost objective on measured I/O, for a wide-window
// workload where the two objectives disagree most.
func BenchmarkAblationObjective(b *testing.B) {
	objs := benchObjects(b, 800)
	queries, err := stx.GenerateQueries(stx.QuerySnapshotLarge, 1000, 29)
	if err != nil {
		b.Fatal(err)
	}
	queries = queries[:150]
	profile := &stx.QueryProfile{ExtentX: 0.03, ExtentY: 0.03, Duration: 1}
	for _, c := range []struct {
		name string
		cfg  stx.SplitConfig
	}{
		{"volume-objective", stx.SplitConfig{Budget: 1200}},
		{"query-objective", stx.SplitConfig{Budget: 1200, QueryAware: profile}},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var avgIO float64
			for i := 0; i < b.N; i++ {
				records, _, err := stx.SplitDataset(objs, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				idx, err := stx.BuildPPR(records, stx.PPROptions{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := stx.MeasureWorkload(idx, queries)
				if err != nil {
					b.Fatal(err)
				}
				avgIO = res.AvgIO
			}
			b.ReportMetric(avgIO, "avg-io")
		})
	}
}

// BenchmarkOverlappingVsPPR reproduces the related-work comparison of the
// two roads to partial persistence (experiment "overlap"): the
// overlapping HR-tree pays a large storage factor and loses interval
// queries; the multi-version PPR-tree stays linear in the changes.
func BenchmarkOverlappingVsPPR(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{800}
	var spaceRatio, rangeRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Overlap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		spaceRatio = float64(r.HRPages) / float64(r.PPRPages)
		rangeRatio = r.HRRangeIO / r.PPRRangeIO
	}
	b.ReportMetric(spaceRatio, "hr/ppr-space-ratio")
	b.ReportMetric(rangeRatio, "hr/ppr-range-io-ratio")
}

// BenchmarkAblationPacking measures the paper's decision not to pack the
// R*-tree: STR bulk loading builds far faster but does not query better
// on split moving-object records ("packing does not help substantially
// with datasets of moving objects").
func BenchmarkAblationPacking(b *testing.B) {
	objs := benchObjects(b, 800)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1200})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := stx.GenerateQueries(stx.QueryRangeSmall, 1000, 19)
	if err != nil {
		b.Fatal(err)
	}
	queries = queries[:150]
	b.Run("rstar-insert", func(b *testing.B) {
		var avgIO float64
		for i := 0; i < b.N; i++ {
			idx, err := stx.BuildRStar(records, stx.RStarOptions{ShuffleSeed: 42})
			if err != nil {
				b.Fatal(err)
			}
			res, err := stx.MeasureWorkload(idx, queries)
			if err != nil {
				b.Fatal(err)
			}
			avgIO = res.AvgIO
		}
		b.ReportMetric(avgIO, "avg-io")
	})
	b.Run("rstar-packed", func(b *testing.B) {
		var avgIO float64
		for i := 0; i < b.N; i++ {
			idx, err := stx.BuildRStarPacked(records, stx.RStarOptions{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := stx.MeasureWorkload(idx, queries)
			if err != nil {
				b.Fatal(err)
			}
			avgIO = res.AvgIO
		}
		b.ReportMetric(avgIO, "avg-io")
	})
}

// BenchmarkHybridDurationSweep sweeps the query duration to show the
// crossover motivating the MV3R-style hybrid: the PPR-tree wins short
// intervals, the 3D R*-tree wins very long ones, the hybrid tracks the
// winner on both sides.
func BenchmarkHybridDurationSweep(b *testing.B) {
	objs := benchObjects(b, 800)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1200})
	if err != nil {
		b.Fatal(err)
	}
	hyb, err := stx.BuildHybrid(records, stx.HybridOptions{IntervalThreshold: 50})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for _, dur := range []int64{1, 10, 50, 250, 800} {
		dur := dur
		b.Run(map[int64]string{1: "dur1", 10: "dur10", 50: "dur50", 250: "dur250", 800: "dur800"}[dur], func(b *testing.B) {
			var pprIO, rstIO, hybIO float64
			queries := make([]stx.Query, 100)
			for i := range queries {
				x, y := rng.Float64()*0.95, rng.Float64()*0.95
				start := rng.Int63n(1000 - dur + 1)
				queries[i] = stx.Query{
					Rect:     stx.Rect{MinX: x, MinY: y, MaxX: x + 0.03, MaxY: y + 0.03},
					Interval: stx.Interval{Start: start, End: start + dur},
				}
			}
			for i := 0; i < b.N; i++ {
				var p, r, h int64
				for _, q := range queries {
					hyb.ResetBuffer()
					if _, err := hyb.PPR().Range(q.Rect, q.Interval); err != nil {
						b.Fatal(err)
					}
					p += hyb.PPR().IOStats().IO()
					hyb.ResetBuffer()
					if _, err := hyb.RStar().Range(q.Rect, q.Interval); err != nil {
						b.Fatal(err)
					}
					r += hyb.RStar().IOStats().IO()
					hyb.ResetBuffer()
					if _, err := hyb.Range(q.Rect, q.Interval); err != nil {
						b.Fatal(err)
					}
					h += hyb.IOStats().IO()
				}
				pprIO = float64(p) / float64(len(queries))
				rstIO = float64(r) / float64(len(queries))
				hybIO = float64(h) / float64(len(queries))
			}
			b.ReportMetric(pprIO, "ppr-avg-io")
			b.ReportMetric(rstIO, "rstar-avg-io")
			b.ReportMetric(hybIO, "hybrid-avg-io")
		})
	}
}

// BenchmarkStreamingVsOffline compares the online indexer against the
// offline pipeline at a matched number of splits — the cost of not seeing
// the future.
func BenchmarkStreamingVsOffline(b *testing.B) {
	objs := benchObjects(b, 600)
	lambda, err := stx.CalibrateLambda(objs[:100], 2.5)
	if err != nil {
		b.Fatal(err)
	}
	type ev struct {
		t     int64
		obj   int
		final bool
	}
	var events []ev
	for i, o := range objs {
		lt := o.Lifetime()
		for tm := lt.Start; tm < lt.End; tm++ {
			events = append(events, ev{t: tm, obj: i})
		}
		events = append(events, ev{t: lt.End, obj: i, final: true})
	}
	sort.SliceStable(events, func(a, c int) bool {
		if events[a].t != events[c].t {
			return events[a].t < events[c].t
		}
		return events[a].final && !events[c].final
	})
	var streamVol float64
	b.Run("stream-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			six, err := stx.NewStreamIndex(stx.StreamOptions{Lambda: lambda}, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range events {
				o := objs[e.obj]
				if e.final {
					if err := six.Finish(o.ID(), e.t); err != nil {
						b.Fatal(err)
					}
					continue
				}
				r, _ := o.At(e.t)
				if err := six.Observe(o.ID(), e.t, r); err != nil {
					b.Fatal(err)
				}
			}
			streamVol = float64(six.Records())
		}
		b.ReportMetric(streamVol, "records")
	})
	b.Run("offline-build", func(b *testing.B) {
		var records int
		for i := 0; i < b.N; i++ {
			recs, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 900})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stx.BuildPPR(recs, stx.PPROptions{}); err != nil {
				b.Fatal(err)
			}
			records = len(recs)
		}
		b.ReportMetric(float64(records), "records")
	})
}

// BenchmarkIndexBuild measures raw build throughput of both structures.
func BenchmarkIndexBuild(b *testing.B) {
	objs := benchObjects(b, 1000)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1500})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ppr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stx.BuildPPR(records, stx.PPROptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rstar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stx.BuildRStar(records, stx.RStarOptions{ShuffleSeed: 42}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryThroughput measures raw query latency (warm buffer) on
// both structures.
func BenchmarkQueryThroughput(b *testing.B) {
	objs := benchObjects(b, 1000)
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 1500})
	if err != nil {
		b.Fatal(err)
	}
	ppr, err := stx.BuildPPR(records, stx.PPROptions{BufferPages: 128})
	if err != nil {
		b.Fatal(err)
	}
	rst, err := stx.BuildRStar(records, stx.RStarOptions{BufferPages: 128, ShuffleSeed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	mkQuery := func() stx.Query {
		x, y := rng.Float64()*0.95, rng.Float64()*0.95
		t := rng.Int63n(1000)
		return stx.Query{
			Rect:     stx.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05},
			Interval: stx.Interval{Start: t, End: t + 1},
		}
	}
	b.Run("ppr-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stx.RunQuery(ppr, mkQuery()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rstar-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stx.RunQuery(rst, mkQuery()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeasureWorkloadParallel measures the full workload-measurement
// loop — cold buffer per query, exact I/O accounting — across worker
// counts. The averages are bit-identical for every setting; only the wall
// clock changes (on a multi-core machine).
func BenchmarkMeasureWorkloadParallel(b *testing.B) {
	objs, err := stx.GenerateRandom(stx.RandomDatasetConfig{N: 1500, Horizon: 1000, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	records, _, err := stx.SplitDataset(objs, stx.SplitConfig{Budget: 2250})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := stx.BuildPPR(records, stx.PPROptions{})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := stx.GenerateQueries(stx.QuerySnapshotMixed, 1000, 5)
	if err != nil {
		b.Fatal(err)
	}
	var base stx.WorkloadResult
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := stx.MeasureWorkloadParallel(idx, queries, workers)
				if err != nil {
					b.Fatal(err)
				}
				if workers == 1 {
					base = res
				} else if base.Queries > 0 && res != base {
					b.Fatalf("workers=%d changed the result: %+v vs %+v", workers, res, base)
				}
			}
			b.ReportMetric(base.AvgIO, "avg-io")
		})
	}
}
