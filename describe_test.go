package stindex

import (
	"strings"
	"testing"
)

func TestDescribeIndexes(t *testing.T) {
	objs := genObjects(t, 300, 61)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}

	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Describe(ppr)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "ppr" || d.Records != len(records) || d.Nodes == 0 || d.RootSpans == 0 {
		t.Fatalf("ppr description implausible: %+v", d)
	}
	if d.LiveNodes+d.DeadNodes != d.Nodes {
		t.Fatalf("live %d + dead %d != nodes %d", d.LiveNodes, d.DeadNodes, d.Nodes)
	}
	if !strings.Contains(d.String(), "rootSpans=") {
		t.Fatalf("String() = %q", d.String())
	}

	rst, err := BuildRStar(records, RStarOptions{ShuffleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err = Describe(rst)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "rstar" || d.AvgLeafFill <= 0.3 || d.AvgLeafFill > 1 {
		t.Fatalf("rstar description implausible: %+v", d)
	}

	hyb, err := BuildHybrid(records, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err = Describe(hyb)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "hybrid" || d.Pages != hyb.Pages() {
		t.Fatalf("hybrid description implausible: %+v", d)
	}

	// Wrappers delegate.
	if d, err = Describe(Synchronized(ppr)); err != nil || d.Kind != "ppr" {
		t.Fatalf("sync describe: %+v %v", d, err)
	}
	if d, err = Describe(Refined(rst, objs)); err != nil || d.Kind != "rstar" {
		t.Fatalf("refined describe: %+v %v", d, err)
	}
}

func TestGenerateCommuterFacade(t *testing.T) {
	objs, err := GenerateCommuter(CommuterDatasetConfig{N: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 200 {
		t.Fatalf("got %d objects", len(objs))
	}
	records, rep, err := SplitDataset(objs, SplitConfig{Budget: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 || rep.Gain() <= 0 {
		t.Fatalf("pipeline over commuters: %d records, gain %.2f", len(records), rep.Gain())
	}
	if _, err := GenerateCommuter(CommuterDatasetConfig{N: -1}); err == nil {
		t.Fatal("accepted negative N")
	}
}
