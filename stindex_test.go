package stindex

import (
	"sort"
	"testing"
)

func genObjects(t *testing.T, n int, seed int64) []*Object {
	t.Helper()
	objs, err := GenerateRandom(RandomDatasetConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("GenerateRandom: %v", err)
	}
	return objs
}

// bruteQuery answers a query by scanning the record set — the indexes'
// exact contract: an object matches when one of its MBR records overlaps
// the query window in space and time. (Like the paper's, the indexes
// return the MBR-approximation answer; the records are the indexed
// entities.)
func bruteQuery(records []Record, q Query) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, r := range records {
		if r.Interval.Start < q.Interval.End && q.Interval.Start < r.Interval.End &&
			r.Rect.Intersects(q.Rect) && !seen[r.ObjectID] {
			seen[r.ObjectID] = true
			out = append(out, r.ObjectID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(ids []int64) []int64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPipelineEndToEnd(t *testing.T) {
	objs := genObjects(t, 600, 1)
	records, rep, err := SplitDataset(objs, SplitConfig{Budget: 900})
	if err != nil {
		t.Fatalf("SplitDataset: %v", err)
	}
	if rep.Records != len(records) {
		t.Fatalf("report says %d records, got %d", rep.Records, len(records))
	}
	if rep.UsedSplits > 900 {
		t.Fatalf("used %d splits of 900", rep.UsedSplits)
	}
	if rep.Records != len(objs)+rep.UsedSplits {
		t.Fatalf("records %d != objects %d + splits %d", rep.Records, len(objs), rep.UsedSplits)
	}
	if rep.Gain() <= 0 || rep.Gain() >= 1 {
		t.Fatalf("gain %.3f out of (0,1)", rep.Gain())
	}

	ppr, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatalf("BuildPPR: %v", err)
	}
	rst, err := BuildRStar(records, RStarOptions{})
	if err != nil {
		t.Fatalf("BuildRStar: %v", err)
	}

	horizon, err := Horizon(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []QuerySet{QuerySnapshotMixed, QueryRangeSmall} {
		queries, err := GenerateQueries(set, horizon.End, 7)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries[:60] {
			want := bruteQuery(records, q)
			gotP, err := RunQuery(ppr, q)
			if err != nil {
				t.Fatalf("%s query %d on ppr: %v", set, qi, err)
			}
			gotR, err := RunQuery(rst, q)
			if err != nil {
				t.Fatalf("%s query %d on rstar: %v", set, qi, err)
			}
			if !equalIDs(sortedIDs(gotP), want) {
				t.Fatalf("%s query %d: ppr returned %d objects, brute force %d", set, qi, len(gotP), len(want))
			}
			if !equalIDs(sortedIDs(gotR), want) {
				t.Fatalf("%s query %d: rstar returned %d objects, brute force %d", set, qi, len(gotR), len(want))
			}
		}
	}
}

func TestSplitConfigVariants(t *testing.T) {
	objs := genObjects(t, 80, 2)
	variants := []SplitConfig{
		{Budget: 0},
		{Budget: 120, Splitter: SplitterDP, Distribution: DistributionOptimal},
		{Budget: 120, Splitter: SplitterMerge, Distribution: DistributionGreedy},
		{Budget: 120, Splitter: SplitterMerge, Distribution: DistributionLAGreedy, LookaheadDepth: 3},
	}
	var volumes []float64
	for i, cfg := range variants {
		records, rep, err := SplitDataset(objs, cfg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(records) == 0 {
			t.Fatalf("variant %d produced no records", i)
		}
		volumes = append(volumes, rep.TotalVolume)
	}
	// No splits must be the largest volume; the optimal 120-split variant
	// must not lose to the greedy ones.
	if volumes[0] < volumes[1] || volumes[0] < volumes[2] || volumes[0] < volumes[3] {
		t.Fatalf("unsplit volume %g should dominate split volumes %v", volumes[0], volumes[1:])
	}
	if volumes[1] > volumes[2]+1e-9 {
		t.Fatalf("optimal distribution %g worse than greedy %g", volumes[1], volumes[2])
	}

	if _, _, err := SplitDataset(objs, SplitConfig{Budget: -1}); err == nil {
		t.Fatal("accepted negative budget")
	}
	if _, _, err := SplitDataset(objs, SplitConfig{Splitter: "nonsense"}); err == nil {
		t.Fatal("accepted unknown splitter")
	}
	if _, _, err := SplitDataset(objs, SplitConfig{Distribution: "nonsense"}); err == nil {
		t.Fatal("accepted unknown distribution")
	}
}

func TestQueryAwareSplitConfig(t *testing.T) {
	objs := genObjects(t, 120, 81)
	budget := 180
	profile := &QueryProfile{ExtentX: 0.05, ExtentY: 0.05, Duration: 1}
	// The dominance guarantee ("optimising the query objective cannot
	// lose on the query objective") holds for the exact optimisers; the
	// heuristics can differ by noise either way.
	exact := SplitConfig{Budget: budget, Splitter: SplitterDP, Distribution: DistributionOptimal}
	exactAware := exact
	exactAware.QueryAware = profile

	volRecords, _, err := SplitDataset(objs, exact)
	if err != nil {
		t.Fatal(err)
	}
	costRecords, costRep, err := SplitDataset(objs, exactAware)
	if err != nil {
		t.Fatal(err)
	}
	if costRep.Records != len(costRecords) {
		t.Fatalf("report mismatch")
	}
	// Evaluate both record sets under the §IV objective: the cost-aware
	// split must not lose on its own objective.
	weighted := func(records []Record) float64 {
		total := 0.0
		for _, r := range records {
			w := r.Rect.MaxX - r.Rect.MinX + profile.ExtentX
			h := r.Rect.MaxY - r.Rect.MinY + profile.ExtentY
			total += w * h * float64(r.Interval.End-r.Interval.Start)
		}
		return total
	}
	cw, vw := weighted(costRecords), weighted(volRecords)
	if cw > vw*1.0001 {
		t.Fatalf("query-aware split %g worse than volume split %g under the query objective", cw, vw)
	}
	// Queries still answer correctly.
	idx, err := BuildPPR(costRecords, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := GenerateQueries(QuerySnapshotMixed, 1000, 83)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:40] {
		want := bruteQuery(costRecords, q)
		got, err := RunQuery(idx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
	}
	// DP variant and validation of bad profiles.
	if _, _, err := SplitDataset(objs[:50], SplitConfig{Budget: 50, Splitter: SplitterDP, QueryAware: profile}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitDataset(objs, SplitConfig{QueryAware: &QueryProfile{ExtentX: -1}}); err == nil {
		t.Fatal("accepted negative query extents")
	}
}

func TestBaselineRecordSets(t *testing.T) {
	objs := genObjects(t, 100, 3)
	unsplit := UnsplitRecords(objs)
	if len(unsplit) != 100 {
		t.Fatalf("UnsplitRecords: %d records", len(unsplit))
	}
	piecewise := PiecewiseRecords(objs)
	if len(piecewise) <= len(unsplit) {
		t.Fatalf("PiecewiseRecords should exceed object count, got %d", len(piecewise))
	}
	if TotalVolume(piecewise) > TotalVolume(unsplit) {
		t.Fatalf("piecewise volume %g exceeds unsplit %g", TotalVolume(piecewise), TotalVolume(unsplit))
	}
}

func TestMeasureWorkload(t *testing.T) {
	objs := genObjects(t, 300, 4)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 450})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := GenerateQueries(QuerySnapshotSmall, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureWorkload(idx, queries[:100])
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 100 || res.AvgIO <= 0 {
		t.Fatalf("workload result %+v implausible", res)
	}
}

func TestChooseBudgetAnalytic(t *testing.T) {
	objs := genObjects(t, 200, 5)
	chosen, table, err := ChooseBudget(objs, ChooseBudgetConfig{})
	if err != nil {
		t.Fatalf("ChooseBudget: %v", err)
	}
	if len(table) == 0 {
		t.Fatal("no candidates evaluated")
	}
	// Predicted cost must improve (weakly) from 0 splits to the chosen
	// budget, and the chosen budget must be one of the candidates.
	found := false
	for _, c := range table {
		if c.Budget == chosen.Budget {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen budget %d not among candidates", chosen.Budget)
	}
	if chosen.PredictedIO > table[0].PredictedIO {
		t.Fatalf("chosen budget predicts %g I/O, worse than no splits %g",
			chosen.PredictedIO, table[0].PredictedIO)
	}
}

func TestChooseBudgetBySampling(t *testing.T) {
	objs := genObjects(t, 300, 6)
	queries, err := GenerateQueries(QuerySnapshotSmall, 1000, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChooseBudgetConfig{Budgets: []int{0, 150, 300, 450}}
	chosen, table, err := ChooseBudgetBySampling(objs, queries[:50], cfg, 0.3, 1)
	if err != nil {
		t.Fatalf("ChooseBudgetBySampling: %v", err)
	}
	if len(table) != 4 {
		t.Fatalf("expected 4 candidates, got %d", len(table))
	}
	if chosen.PredictedIO > table[0].PredictedIO {
		t.Fatalf("sampling chose budget %d with %g I/O, worse than no splits %g",
			chosen.Budget, chosen.PredictedIO, table[0].PredictedIO)
	}
}

func TestIndexAccounting(t *testing.T) {
	objs := genObjects(t, 200, 7)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func() (Index, error){
		func() (Index, error) { return BuildPPR(records, PPROptions{}) },
		func() (Index, error) { return BuildRStar(records, RStarOptions{}) },
	} {
		idx, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if idx.Records() != len(records) {
			t.Fatalf("%s: Records() = %d, want %d", idx.Kind(), idx.Records(), len(records))
		}
		if idx.Pages() <= 0 || idx.Bytes() <= 0 {
			t.Fatalf("%s: empty footprint", idx.Kind())
		}
		idx.ResetBuffer()
		if _, err := idx.Snapshot(Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}, 500); err != nil {
			t.Fatal(err)
		}
		st := idx.IOStats()
		if st.Reads == 0 || st.Writes != 0 {
			t.Fatalf("%s: query stats %+v implausible", idx.Kind(), st)
		}
	}
}

func TestPPRIndexAppend(t *testing.T) {
	// Two temporally disjoint batches: day one and day two of the
	// evolution (append requires history to stay closed).
	dayOne := genObjects(t, 200, 71)
	dayTwoRaw := genObjects(t, 200, 72)
	dayTwo := make([]*Object, len(dayTwoRaw))
	for i, o := range dayTwoRaw {
		lt := o.Lifetime()
		rects := make([]Rect, o.Len())
		for j := range rects {
			r, _ := o.At(lt.Start + int64(j))
			rects[j] = r
		}
		shifted, err := NewObject(o.ID()+1000, lt.Start+1000, rects)
		if err != nil {
			t.Fatal(err)
		}
		dayTwo[i] = shifted
	}
	first, _, err := SplitDataset(dayOne, SplitConfig{Budget: 300})
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := SplitDataset(dayTwo, SplitConfig{Budget: 300})
	if err != nil {
		t.Fatal(err)
	}
	records := append(append([]Record{}, first...), second...)

	idx, err := BuildPPR(first, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Append(second); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if idx.Records() != len(records) {
		t.Fatalf("Records = %d, want %d", idx.Records(), len(records))
	}
	if _, err := idx.Tree().Validate(); err != nil {
		t.Fatalf("invalid after append: %v", err)
	}
	whole, err := BuildPPR(records, PPROptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := GenerateQueries(QuerySnapshotMixed, 2000, 73)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:60] {
		a, err := RunQuery(idx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunQuery(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("query %d: appended index %d results, monolithic %d", qi, len(a), len(b))
		}
	}
	// Appending into the past must fail.
	if err := idx.Append(first[:1]); err == nil {
		t.Fatal("accepted records that start before the current time")
	}
}

func TestPackedRStarMatchesInserted(t *testing.T) {
	objs := genObjects(t, 400, 8)
	records, _, err := SplitDataset(objs, SplitConfig{Budget: 600})
	if err != nil {
		t.Fatal(err)
	}
	inserted, err := BuildRStar(records, RStarOptions{ShuffleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := BuildRStarPacked(records, RStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := packed.Tree().Validate(); err != nil {
		t.Fatalf("packed tree invalid: %v", err)
	}
	if packed.Records() != len(records) {
		t.Fatalf("packed Records = %d", packed.Records())
	}
	// Packing must not change answers, only layout.
	queries, err := GenerateQueries(QuerySnapshotMixed, 1000, 17)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:60] {
		a, err := RunQuery(inserted, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunQuery(packed, q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("query %d: inserted %d results, packed %d", qi, len(a), len(b))
		}
	}
	// Packing balances chunks between 50% and 100% fill, so the footprint
	// stays in the same ballpark as insertion-built trees.
	if packed.Pages() > inserted.Pages()*13/10 {
		t.Fatalf("packed tree uses %d pages, insertion-built %d", packed.Pages(), inserted.Pages())
	}
	if _, err := BuildRStarPacked(nil, RStarOptions{}); err == nil {
		t.Fatal("accepted empty records")
	}
}

func TestBuildRejectsEmptyRecords(t *testing.T) {
	if _, err := BuildPPR(nil, PPROptions{}); err == nil {
		t.Fatal("BuildPPR accepted empty records")
	}
	if _, err := BuildRStar(nil, RStarOptions{}); err == nil {
		t.Fatal("BuildRStar accepted empty records")
	}
}

func TestNewObjectFromSegments(t *testing.T) {
	o, err := NewObjectFromSegments(9, []Segment{
		{Start: 0, End: 10, X: []float64{0.1, 0.01}, Y: []float64{0.5}, HalfW: []float64{0.01}, HalfH: []float64{0.01}},
		{Start: 10, End: 20, X: []float64{0.2}, Y: []float64{0.5, 0.005}, HalfW: []float64{0.01}, HalfH: []float64{0.01}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 20 || o.ID() != 9 {
		t.Fatalf("object %d has %d instants", o.ID(), o.Len())
	}
	r, ok := o.At(0)
	if !ok || r.MinX < 0.09-1e-12 || r.MinX > 0.09+1e-12 {
		t.Fatalf("At(0) = %v, %v", r, ok)
	}
	if _, ok := o.At(25); ok {
		t.Fatal("At outside lifetime should report !ok")
	}
	if _, err := NewObjectFromSegments(9, []Segment{
		{Start: 0, End: 10}, {Start: 12, End: 20},
	}); err == nil {
		t.Fatal("accepted gapped segments")
	}
}
