package stindex

import (
	"fmt"
)

// HybridOptions configures BuildHybrid.
type HybridOptions struct {
	PPR   PPROptions
	RStar RStarOptions
	// IntervalThreshold is the longest query duration (in instants) still
	// routed to the partially persistent tree; longer intervals go to the
	// 3D R*-tree, which reads each record once instead of walking many
	// versions. Default 50 — the longest duration in the paper's query
	// sets, where the PPR-tree still wins.
	IntervalThreshold int64
}

// HybridIndex pairs a partially persistent R-tree with a 3D R*-tree over
// the same records and routes each query to whichever structure answers
// it cheaper — the idea behind the MV3R-tree (Tao & Papadias, the paper's
// reference [25], its "best previous alternative"): timestamp and short
// interval queries hit the multi-version tree, long interval queries the
// 3D tree.
//
// The price is the combined storage of both structures; the benefit is
// uniformly good performance across query durations.
type HybridIndex struct {
	ppr       *PPRIndex
	rstar     *RStarIndex
	threshold int64
	closer    fileHandle // see PPRIndex.closer
}

// BuildHybrid indexes the records with both structures.
func BuildHybrid(records []Record, opts HybridOptions) (*HybridIndex, error) {
	if opts.IntervalThreshold < 0 {
		return nil, fmt.Errorf("stindex: negative interval threshold %d", opts.IntervalThreshold)
	}
	if opts.IntervalThreshold == 0 {
		opts.IntervalThreshold = 50
	}
	ppr, err := BuildPPR(records, opts.PPR)
	if err != nil {
		return nil, err
	}
	rstar, err := BuildRStar(records, opts.RStar)
	if err != nil {
		return nil, err
	}
	return &HybridIndex{ppr: ppr, rstar: rstar, threshold: opts.IntervalThreshold}, nil
}

// Snapshot implements Index: snapshots always go to the PPR-tree.
func (h *HybridIndex) Snapshot(r Rect, t int64) ([]int64, error) {
	return h.ppr.Snapshot(r, t)
}

// Range implements Index, routing by query duration.
func (h *HybridIndex) Range(r Rect, iv Interval) ([]int64, error) {
	if iv.End-iv.Start <= h.threshold {
		return h.ppr.Range(r, iv)
	}
	return h.rstar.Range(r, iv)
}

// Nearest implements Index: an instant query, so it goes to the
// PPR-tree like Snapshot does.
func (h *HybridIndex) Nearest(px, py float64, t int64, k int) ([]Neighbor, error) {
	return h.ppr.Nearest(px, py, t, k)
}

// Trajectory implements Index, routing by query duration exactly like
// Range — both components return the same answer, the threshold only
// picks the cheaper traversal.
func (h *HybridIndex) Trajectory(r Rect, iv Interval) ([]TrajectoryHit, error) {
	if iv.End-iv.Start <= h.threshold {
		return h.ppr.Trajectory(r, iv)
	}
	return h.rstar.Trajectory(r, iv)
}

// ResetBuffer implements Index.
func (h *HybridIndex) ResetBuffer() {
	h.ppr.ResetBuffer()
	h.rstar.ResetBuffer()
}

// IOStats implements Index: the sum over both structures.
func (h *HybridIndex) IOStats() IOStats {
	a, b := h.ppr.IOStats(), h.rstar.IOStats()
	return IOStats{Reads: a.Reads + b.Reads, Writes: a.Writes + b.Writes, Hits: a.Hits + b.Hits}
}

// Pages implements Index: combined footprint.
func (h *HybridIndex) Pages() int { return h.ppr.Pages() + h.rstar.Pages() }

// Bytes implements Index: combined footprint.
func (h *HybridIndex) Bytes() int64 { return h.ppr.Bytes() + h.rstar.Bytes() }

// Records implements Index.
func (h *HybridIndex) Records() int { return h.ppr.Records() }

// Kind implements Index.
func (h *HybridIndex) Kind() string { return "hybrid" }

// Close releases the container file of a lazily opened index; see
// (*PPRIndex).Close. Idempotent, safe for concurrent callers.
func (h *HybridIndex) Close() error { return h.closer.close() }

// QueryView implements QueryViewer: views of both components sharing the
// frozen page files, each with private buffer pools.
func (h *HybridIndex) QueryView() Index {
	return &HybridIndex{
		ppr:       h.ppr.QueryView().(*PPRIndex),
		rstar:     h.rstar.QueryView().(*RStarIndex),
		threshold: h.threshold,
	}
}

// PPR exposes the timestamp-side component.
func (h *HybridIndex) PPR() *PPRIndex { return h.ppr }

// RStar exposes the long-interval component.
func (h *HybridIndex) RStar() *RStarIndex { return h.rstar }

var _ Index = (*HybridIndex)(nil)
