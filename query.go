package stindex

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"stindex/internal/geom"
)

// QueryKind selects which question a Query asks. The zero value is the
// paper's window search, so existing Query literals keep their meaning.
type QueryKind uint8

const (
	// KindWindow is the paper's window/interval search: objects
	// intersecting Rect at some instant of Interval.
	KindWindow QueryKind = iota
	// KindKNN is k-nearest-neighbor search at one instant: the K objects
	// alive at Interval.Start whose rectangles are nearest to the point
	// (Rect.MinX, Rect.MinY).
	KindKNN
	// KindTrajectory is the trajectory predicate: objects whose path
	// crossed Rect at some instant of Interval, reported with how many of
	// their split pieces matched (multi-entry style).
	KindTrajectory
)

// String names the kind the way the /query HTTP parameter spells it.
func (k QueryKind) String() string {
	switch k {
	case KindKNN:
		return "knn"
	case KindTrajectory:
		return "trajectory"
	default:
		return "window"
	}
}

// ErrBadQuery is wrapped by every query-validation failure (k < 1,
// non-finite kNN point). Test with errors.Is; the serving layer maps it
// to HTTP 400.
var ErrBadQuery = errors.New("stindex: invalid query")

// Neighbor is one kNN answer. Dist2 is the squared Euclidean distance
// from the query point to the nearest point of the object's rectangle at
// the query instant (0 when the point lies inside it). Distances stay
// squared end to end: the square root is not monotone over distinct
// float64 values after rounding, so comparing squared values is what
// keeps serial, sharded and oracle answers bit-identical.
//
// Answers are ordered by ascending (Dist2, ObjectID). The ObjectID
// tie-break — rather than, say, record ref then insertion time — is
// deliberate: refs are shard-local and insertion order is
// partitioner-dependent, while object IDs mean the same thing in every
// execution path, so the pinned order survives the sharded merge.
type Neighbor struct {
	ObjectID int64
	Dist2    float64
}

// TrajectoryHit is one trajectory-query answer: an object whose path
// crossed the query region during the query interval, with the number of
// its distinct split pieces (index records) that matched. Hits are
// ordered by ascending ObjectID.
type TrajectoryHit struct {
	ObjectID int64
	Pieces   int
}

// QueryResult is the kind-polymorphic answer of RunQueryResult. IDs is
// populated for every kind (for kNN in ascending (Dist2, ObjectID)
// order, otherwise ascending); Neighbors only for KindKNN, Trajectories
// only for KindTrajectory.
type QueryResult struct {
	IDs          []int64
	Neighbors    []Neighbor
	Trajectories []TrajectoryHit
}

// KNNQuery builds a k-nearest-neighbor query: the k objects alive at
// instant t nearest to (x, y).
func KNNQuery(x, y float64, t int64, k int) Query {
	return Query{
		Kind:     KindKNN,
		Rect:     Rect{MinX: x, MinY: y, MaxX: x, MaxY: y},
		Interval: Interval{Start: t, End: t + 1},
		K:        k,
	}
}

// TrajectoryQuery builds a trajectory query: the objects whose path
// crossed r at some instant of iv.
func TrajectoryQuery(r Rect, iv Interval) Query {
	return Query{Kind: KindTrajectory, Rect: r, Interval: iv}
}

// RunQueryResult executes one query of any kind and returns the full
// answer. RunQuery is the IDs-only shorthand.
func RunQueryResult(idx Index, q Query) (QueryResult, error) {
	switch q.Kind {
	case KindKNN:
		nb, err := idx.Nearest(q.Rect.MinX, q.Rect.MinY, q.Interval.Start, q.K)
		if err != nil {
			return QueryResult{}, err
		}
		ids := make([]int64, len(nb))
		for i, n := range nb {
			ids[i] = n.ObjectID
		}
		return QueryResult{IDs: ids, Neighbors: nb}, nil
	case KindTrajectory:
		hits, err := idx.Trajectory(q.Rect, q.Interval)
		if err != nil {
			return QueryResult{}, err
		}
		ids := make([]int64, len(hits))
		for i, h := range hits {
			ids[i] = h.ObjectID
		}
		return QueryResult{IDs: ids, Trajectories: hits}, nil
	default:
		ids, err := RunQuery(idx, q)
		if err != nil {
			return QueryResult{}, err
		}
		return QueryResult{IDs: ids}, nil
	}
}

// ValidateKNN rejects malformed kNN arguments: k < 1 or a non-finite
// query point. Every Nearest implementation calls it before traversing,
// so malformed input surfaces as ErrBadQuery instead of garbage answers
// (NaN breaks any comparison-based pruning).
func ValidateKNN(x, y float64, k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k must be >= 1, got %d", ErrBadQuery, k)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("%w: non-finite query point (%v, %v)", ErrBadQuery, x, y)
	}
	return nil
}

// MinDist2 returns the squared Euclidean distance from (x, y) to the
// nearest point of r — the branch-and-bound MINDIST bound, and the exact
// distance notion Neighbor.Dist2 reports.
func (r Rect) MinDist2(x, y float64) float64 { return r.internal().MinDist2(x, y) }

// knnCollector accumulates the k best (Dist2, ObjectID) pairs from a
// best-first traversal that emits candidates in non-decreasing distance
// order. add reports whether the traversal should continue: false only
// once the list is full and the emitted distance strictly exceeds the
// current k-th best — an equal distance may still displace a larger
// ObjectID under the pinned tie order.
type knnCollector struct {
	k  int
	nb []Neighbor
}

func (c *knnCollector) add(d2 float64, id int64) bool {
	if len(c.nb) == c.k && d2 > c.nb[len(c.nb)-1].Dist2 {
		return false
	}
	c.nb = mergeNeighbor(c.nb, Neighbor{ObjectID: id, Dist2: d2}, c.k)
	return true
}

// mergeNeighbor inserts n into nb (kept ascending by (Dist2, ObjectID)),
// deduplicating per object — the smaller key wins — and truncating to k.
func mergeNeighbor(nb []Neighbor, n Neighbor, k int) []Neighbor {
	for i := range nb {
		if nb[i].ObjectID == n.ObjectID {
			if n.Dist2 >= nb[i].Dist2 {
				return nb
			}
			nb = append(nb[:i], nb[i+1:]...)
			break
		}
	}
	i := sort.Search(len(nb), func(i int) bool {
		if nb[i].Dist2 != n.Dist2 {
			return nb[i].Dist2 > n.Dist2
		}
		return nb[i].ObjectID > n.ObjectID
	})
	if i >= k {
		return nb
	}
	nb = append(nb, Neighbor{})
	copy(nb[i+1:], nb[i:])
	nb[i] = n
	if len(nb) > k {
		nb = nb[:k]
	}
	return nb
}

// MergeNeighbors merges src into dst under the global (Dist2, ObjectID)
// order, deduplicating per object (the smaller key wins) and truncating
// to k. This is the scatter-gather merge of the sharded router: merging
// per-shard top-k lists this way yields exactly the global top-k,
// because the global answer is a subset of the union of per-shard
// answers under the same order.
func MergeNeighbors(dst, src []Neighbor, k int) []Neighbor {
	for _, n := range src {
		dst = mergeNeighbor(dst, n, k)
	}
	return dst
}

// trajectoryHits converts a per-object piece-count map into the sorted
// answer slice shared by every Trajectory implementation.
func trajectoryHits(counts map[int64]int) []TrajectoryHit {
	if len(counts) == 0 {
		return nil
	}
	out := make([]TrajectoryHit, 0, len(counts))
	for id, n := range counts {
		out = append(out, TrajectoryHit{ObjectID: id, Pieces: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

// Nearest implements Index: branch-and-bound best-first search over the
// snapshot structure at t (see pprtree.NearestSearch).
func (x *PPRIndex) Nearest(px, py float64, t int64, k int) ([]Neighbor, error) {
	if err := ValidateKNN(px, py, k); err != nil {
		return nil, err
	}
	col := knnCollector{k: k}
	var cbErr error
	err := x.tree.NearestSearch(px, py, t, func(d2 float64, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "ppr")
		if err != nil {
			cbErr = err
			return false
		}
		return col.add(d2, id)
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return col.nb, nil
}

// Trajectory implements Index: the interval search already reports each
// record (split piece) once, so aggregating refs per owner yields the
// multi-entry trajectory answer.
func (x *PPRIndex) Trajectory(r Rect, iv Interval) ([]TrajectoryHit, error) {
	counts := make(map[int64]int)
	var cbErr error
	err := x.tree.IntervalSearch(r.internal(), iv.internal(), func(_ geom.Rect, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "ppr")
		if err != nil {
			cbErr = err
			return false
		}
		counts[id]++
		return true
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return trajectoryHits(counts), nil
}

// Nearest implements Index. The instant t maps to the scaled time probe
// (t+0.5)*timeScale, strictly inside the closed box of exactly the
// records whose half-open lifetime contains t (the same ±0.5 trick as
// queryBox), so the XY min-distance search sees precisely the records
// alive at t.
func (x *RStarIndex) Nearest(px, py float64, t int64, k int) ([]Neighbor, error) {
	if err := ValidateKNN(px, py, k); err != nil {
		return nil, err
	}
	tc := (float64(t) + 0.5) * x.timeScale
	col := knnCollector{k: k}
	var cbErr error
	err := x.tree.NearestSearch(px, py, tc, func(d2 float64, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "rstar")
		if err != nil {
			cbErr = err
			return false
		}
		return col.add(d2, id)
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return col.nb, nil
}

// Trajectory implements Index: one 3D search, refs aggregated per owner.
func (x *RStarIndex) Trajectory(r Rect, iv Interval) ([]TrajectoryHit, error) {
	if !iv.internal().ValidInterval() {
		return nil, nil
	}
	counts := make(map[int64]int)
	var cbErr error
	err := x.tree.Search(x.queryBox(r, iv), func(_ geom.Box3, ref uint64) bool {
		id, err := ownerOf(x.owners, ref, "rstar")
		if err != nil {
			cbErr = err
			return false
		}
		counts[id]++
		return true
	})
	if err == nil {
		err = cbErr
	}
	if err != nil {
		return nil, err
	}
	return trajectoryHits(counts), nil
}
